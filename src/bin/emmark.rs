//! `emmark` — command-line front end for the EmMark pipeline.
//!
//! ```text
//! emmark demo --out-dir DIR [--bits N] [--seed S] [--max-resident-mb M]
//!                                                   build a demo: train, quantize,
//!                                                   watermark; writes deployed.emqm,
//!                                                   secrets.emws, original.emqm
//!                                                   (with a budget: the streaming
//!                                                   stamp pipeline, one layer
//!                                                   resident at a time)
//! emmark verify --secrets FILE --suspect FILE       ownership proof (Eqs. 6–8);
//!                                                   v2 artifacts are probed sparsely
//! emmark inspect --model FILE [--json]              layer/scheme/bit summary from the
//!                                                   v2 header index; .emfb fleet
//!                                                   bundles get a streamed device/
//!                                                   fingerprint report (machine-
//!                                                   readable with --json)
//! emmark attack --model FILE --out FILE --per-layer N [--seed S]
//!                                                   parameter-overwriting attack
//! emmark fleet-provision --secrets FILE --out-dir DIR --devices N
//!                        [--prefix NAME] [--fp-bits N] [--fp-pool N] [--fp-seed S]
//!                        [--jobs N] [--bundle FILE] [--shards N]
//!                        [--max-resident-mb M]
//!                                                   score-once/insert-many batch
//!                                                   provisioning: fingerprint N
//!                                                   device artifacts by delta-
//!                                                   patching the base artifact,
//!                                                   write the fleet registry (and
//!                                                   optionally one bundle file);
//!                                                   with --shards, also an EMFM
//!                                                   sharded registry (manifest +
//!                                                   registry-NNNNN.emfr shard
//!                                                   files + leak index); with a
//!                                                   budget, artifacts and bundle
//!                                                   are spliced straight to disk,
//!                                                   never resident
//! emmark fleet-verify --secrets FILE (--registry FILE --artifacts DIR
//!                     | --manifest FILE --artifacts DIR | --bundle FILE)
//!                     [--threshold L] [--jobs N]    parallel batch verification +
//!                                                   leak tracing over a directory
//!                                                   or a provisioned-fleet bundle
//!                                                   (bundles stream through a
//!                                                   bounded ring of artifacts);
//!                                                   --manifest loads a sharded
//!                                                   registry and traces through
//!                                                   its leak index
//! emmark identify-leak --secrets FILE --manifest FILE --suspect FILE
//!                      [--threshold L] [--linear]   trace one leaked artifact to
//!                                                   the responsible device through
//!                                                   the manifest's inverted index
//!                                                   (sublinear in fleet size;
//!                                                   --linear forces the full scan,
//!                                                   verdicts are bit-identical)
//! emmark serve [--socket PATH] [--workers N] [--queue N] [--cache-families N]
//!              [--retry-after-ms MS] [--max-resident-mb M]
//!                                                   emmarkd: long-running service
//!                                                   answering framed verify /
//!                                                   provision / identify-leak /
//!                                                   inspect requests over a Unix
//!                                                   socket (or stdin/stdout),
//!                                                   keeping one family cache warm
//!                                                   per owner vault behind an LRU
//! ```
//!
//! The demo subcommand exists so the whole flow can be driven without
//! writing a line of Rust; `verify` is the command a proprietor would
//! actually run against a seized model file, and `fleet-verify` is its
//! fleet-scale counterpart: every `.emqm` artifact in a directory is
//! checked for the ownership watermark and traced to the registered
//! device that leaked it, in parallel, sharing one location cache.
//!
//! Every pipeline command (demo, verify, fleet-provision, fleet-verify,
//! identify-leak) additionally takes `--telemetry FILE.jsonl` (stream
//! span events + final snapshot as JSON lines) and `--metrics` (dump
//! the snapshot to stderr in Prometheus text format) — see
//! [`emmark::core::telemetry`].

use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::core::deploy::{
    artifact_version, decode_model, encode_model, encode_model_into, SparseArtifact, FORMAT_V2,
};
use emmark::core::fleet::{
    decode_registry, encode_registry, FleetError, FleetVerdict, FleetVerifier,
};
use emmark::core::provision::FleetProvisioner;
use emmark::core::registry::{
    decode_manifest, encode_manifest, load_sharded_registry, provision_sharded_into,
    IndexedFleetVerifier, LeakIndex,
};
use emmark::core::service::{read_frame, write_frame, Request, Service, ServiceConfig};
use emmark::core::store::{ArtifactLayerStore, ArtifactSink};
use emmark::core::telemetry::{peak_resident_mib, Snapshot, Telemetry};
use emmark::core::vault::{decode_secrets, encode_secrets, FleetBundleStream};
use emmark::core::watermark::{stream_watermark, OwnerSecrets, WatermarkConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(command.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(allowed) = allowed_opts(command) else {
        eprintln!("error: unknown command `{command}`\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest, allowed) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let observed = match telemetry_begin(&opts) {
        Ok(observed) => observed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "demo" => cmd_demo(&opts),
        "verify" => cmd_verify(&opts),
        "inspect" => cmd_inspect(&opts),
        "attack" => cmd_attack(&opts),
        "fleet-provision" => cmd_fleet_provision(&opts),
        "fleet-verify" => cmd_fleet_verify(&opts),
        "identify-leak" => cmd_identify_leak(&opts),
        "serve" => cmd_serve(&opts),
        other => Err(format!("unknown command `{other}`")),
    };
    // Export even on failure — partial counters are exactly what a
    // post-mortem wants — but never let an export error mask the
    // command's own.
    let finish = if observed {
        telemetry_finish(opts.contains_key("metrics"))
    } else {
        Ok(())
    };
    match result.and(finish) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
emmark — watermarking for embedded quantized LLMs (DAC 2024 reproduction)

USAGE:
  emmark demo    --out-dir DIR [--bits N] [--seed S] [--d-model N] [--d-ff N]
                 [--steps N] [--max-resident-mb M]
  emmark verify  --secrets FILE --suspect FILE
  emmark inspect --model FILE [--json]        (.emqm artifacts, .emfb bundles,
                                               .emfm shard manifests)
  emmark attack  --model FILE --out FILE --per-layer N [--seed S]
  emmark fleet-provision --secrets FILE --out-dir DIR --devices N
                         [--prefix NAME] [--fp-bits N] [--fp-pool N] [--fp-seed S]
                         [--jobs N] [--bundle FILE] [--shards N] [--max-resident-mb M]
  emmark fleet-verify    --secrets FILE (--registry FILE --artifacts DIR
                         | --manifest FILE --artifacts DIR | --bundle FILE)
                         [--threshold L] [--jobs N]
  emmark identify-leak   --secrets FILE --manifest FILE --suspect FILE
                         [--threshold L] [--linear]
  emmark serve           [--socket PATH] [--workers N] [--queue N]
                         [--cache-families N] [--retry-after-ms MS]
                         [--max-resident-mb M]

--max-resident-mb switches the stamp side onto the streaming LayerStore
pipeline (score → insert → encode one layer at a time; device artifacts
spliced straight to disk) and fails the run if peak resident memory
exceeded the budget (Linux VmHWM; reported best-effort elsewhere).

demo, verify, fleet-provision, fleet-verify, identify-leak, and serve
also take
  --telemetry FILE.jsonl   stream span events to FILE and append a final
                           counter/histogram snapshot (one JSON object
                           per line)
  --metrics                dump the final snapshot to stderr in
                           Prometheus text format
Instrumentation is compiled in but costs one atomic load per site when
neither flag is given.";

/// Options that are flags (present or absent), not key-value pairs.
const BOOL_FLAGS: &[&str] = &["json", "linear", "metrics"];

/// The options each subcommand accepts; anything else is rejected by
/// name instead of silently ignored. `None` means the command itself is
/// unknown.
fn allowed_opts(command: &str) -> Option<&'static [&'static str]> {
    Some(match command {
        "demo" => &[
            "out-dir",
            "bits",
            "seed",
            "d-model",
            "d-ff",
            "steps",
            "max-resident-mb",
            "telemetry",
            "metrics",
        ],
        "verify" => &["secrets", "suspect", "telemetry", "metrics"],
        "inspect" => &["model", "json"],
        "attack" => &["model", "out", "per-layer", "seed"],
        "fleet-provision" => &[
            "secrets",
            "out-dir",
            "devices",
            "prefix",
            "fp-bits",
            "fp-pool",
            "fp-seed",
            "jobs",
            "bundle",
            "shards",
            "max-resident-mb",
            "telemetry",
            "metrics",
        ],
        "fleet-verify" => &[
            "secrets",
            "registry",
            "artifacts",
            "manifest",
            "bundle",
            "threshold",
            "jobs",
            "telemetry",
            "metrics",
        ],
        "identify-leak" => &[
            "secrets",
            "manifest",
            "suspect",
            "threshold",
            "linear",
            "telemetry",
            "metrics",
        ],
        "serve" => &[
            "socket",
            "workers",
            "queue",
            "cache-families",
            "retry-after-ms",
            "max-resident-mb",
            "telemetry",
            "metrics",
        ],
        _ => return None,
    })
}

fn parse_opts(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected an option, found `{key}`"));
        };
        if !allowed.contains(&name) {
            return Err(format!("unknown option --{name}"));
        }
        if BOOL_FLAGS.contains(&name) {
            opts.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("option --{name} needs a value"))?;
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

/// Enables telemetry when `--telemetry PATH` or `--metrics` is present;
/// with a path, span events stream to the JSONL file as they happen.
/// Returns whether observation is on (so `main` knows to export).
fn telemetry_begin(opts: &HashMap<String, String>) -> Result<bool, String> {
    let jsonl = opts.get("telemetry");
    let metrics = opts.contains_key("metrics");
    if jsonl.is_none() && !metrics {
        return Ok(false);
    }
    match jsonl {
        Some(path) => {
            // The sink opens before the command runs, which may be what
            // creates the directory the file lives in (demo --out-dir).
            if let Some(parent) = Path::new(path)
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
            {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
            let file = File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            Telemetry::install_jsonl_sink(Box::new(BufWriter::new(file)));
        }
        None => Telemetry::set_enabled(true),
    }
    Ok(true)
}

/// Exports what the run recorded: the registry snapshot is appended to
/// the JSONL sink (if `--telemetry` was given) and, under `--metrics`,
/// dumped to stderr in Prometheus text format.
fn telemetry_finish(metrics: bool) -> Result<(), String> {
    let snap = Snapshot::capture();
    if let Some(mut sink) = Telemetry::take_jsonl_sink() {
        snap.write_jsonl(&mut sink)
            .and_then(|()| sink.flush())
            .map_err(|e| format!("writing telemetry JSONL: {e}"))?;
    }
    if metrics {
        eprint!("{}", snap.render_prometheus());
    }
    Ok(())
}

fn required<'o>(opts: &'o HashMap<String, String>, name: &str) -> Result<&'o str, String> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{name}"))
}

fn parsed<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{raw}`")),
    }
}

fn read_file(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn create_file(path: &Path) -> Result<BufWriter<File>, String> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| format!("creating {}: {e}", path.display()))
}

/// The `--max-resident-mb` budget, if given.
fn memory_budget(opts: &HashMap<String, String>) -> Result<Option<usize>, String> {
    match opts.get("max-resident-mb") {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("--max-resident-mb: cannot parse `{raw}`")),
    }
}

/// Reports peak resident memory against the `--max-resident-mb` budget
/// and fails the command if it was exceeded (where the platform exposes
/// a high-water mark).
fn enforce_memory_budget(budget: Option<usize>) -> Result<(), String> {
    let Some(cap) = budget else { return Ok(()) };
    match peak_resident_mib() {
        Some(peak) => {
            println!("peak resident memory: {peak:.1} MiB (budget {cap} MiB)");
            if peak > cap as f64 {
                Err(format!(
                    "peak resident memory {peak:.1} MiB exceeded --max-resident-mb {cap}"
                ))
            } else {
                Ok(())
            }
        }
        None => {
            println!("peak resident memory: unavailable on this platform ({cap} MiB budget not enforced)");
            Ok(())
        }
    }
}

fn cmd_demo(opts: &HashMap<String, String>) -> Result<(), String> {
    let out_dir = PathBuf::from(required(opts, "out-dir")?);
    let bits: usize = parsed(opts, "bits", 8)?;
    let seed: u64 = parsed(opts, "seed", 2024)?;
    // Width and training knobs so smoke tests can scale the demo: wider
    // layers make per-layer loads big enough to measure pipeline
    // overlap, fewer steps keep an untrained-but-stampable model cheap.
    let d_model: usize = parsed(opts, "d-model", 32)?;
    let d_ff: usize = parsed(opts, "d-ff", 96)?;
    let steps: u64 = parsed(opts, "steps", 200)?;
    let budget = memory_budget(opts)?;
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;

    println!("training a nano-LM on SynWiki…");
    let corpus = Corpus::sample(Grammar::synwiki(seed), 12_000, 1_000, 2_000);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    cfg.d_model = d_model;
    cfg.d_ff = d_ff;
    let mut model = TransformerModel::new(cfg);
    train(
        &mut model,
        &corpus,
        &TrainConfig {
            steps,
            batch_size: 8,
            seq_len: 24,
            ..TrainConfig::default()
        },
    );
    println!("quantizing with AWQ INT4 and capturing A_f…");
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = model.collect_activation_stats(&calibration);
    let quantized = awq(&model, &stats, &AwqConfig::default());

    println!("inserting the watermark ({bits} bits/layer)…");
    let wm_cfg = WatermarkConfig {
        bits_per_layer: bits,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(quantized, stats, wm_cfg, seed ^ 0x51C);

    if budget.is_some() {
        // Streaming stamp path: score → insert → encode one layer at a
        // time, records flowing straight to disk — neither the
        // watermarked model nor either artifact is ever resident.
        println!("streaming stamp path (one layer resident at a time)…");
        let original_path = out_dir.join("original.emqm");
        encode_model_into(&secrets.original, create_file(&original_path)?)
            .map_err(|e| e.to_string())?;
        // Stamp from the just-encoded artifact on disk rather than the
        // resident model: real file loads let the pipeline-parallel
        // stamp overlap layer N+1's read with layer N's bump + encode
        // (a borrow of a resident layer has nothing to overlap). The
        // loaded layers are bit-identical, so the deployed artifact is
        // byte-identical to the resident-store stamp.
        let original = File::open(&original_path)
            .map_err(|e| format!("reading {}: {e}", original_path.display()))?;
        let store =
            ArtifactLayerStore::open(BufReader::new(original)).map_err(|e| e.to_string())?;
        stream_watermark(
            &store,
            &secrets.stats,
            &secrets.signature,
            &secrets.config,
            &mut ArtifactSink::new(create_file(&out_dir.join("deployed.emqm"))?),
        )
        .map_err(|e| e.to_string())?;
    } else {
        let deployed = secrets
            .watermark_for_deployment()
            .map_err(|e| e.to_string())?;
        write_file(
            &out_dir.join("original.emqm"),
            &encode_model(&secrets.original),
        )?;
        write_file(&out_dir.join("deployed.emqm"), &encode_model(&deployed))?;
    }
    write_file(&out_dir.join("secrets.emws"), &encode_secrets(&secrets))?;
    println!(
        "wrote {}/original.emqm, deployed.emqm, secrets.emws ({} watermark bits)",
        out_dir.display(),
        secrets.signature.len()
    );
    println!(
        "try: emmark verify --secrets {0}/secrets.emws --suspect {0}/deployed.emqm",
        out_dir.display()
    );
    enforce_memory_budget(budget)
}

fn cmd_verify(opts: &HashMap<String, String>) -> Result<(), String> {
    let secrets =
        decode_secrets(&read_file(required(opts, "secrets")?)?).map_err(|e| e.to_string())?;
    let suspect_bytes = read_file(required(opts, "suspect")?)?;
    // v2 artifacts are probed sparsely: only the header index and the
    // few hundred watermark cells are read. v1 falls back to a full
    // decode; both paths produce the same report bit for bit.
    let report = if artifact_version(&suspect_bytes).map_err(|e| e.to_string())? == FORMAT_V2 {
        let sparse = SparseArtifact::open(&suspect_bytes).map_err(|e| e.to_string())?;
        println!(
            "suspect : v2 artifact ({} KiB), sparse random-access extraction",
            suspect_bytes.len() / 1024
        );
        secrets.verify(&sparse)
    } else {
        println!(
            "suspect : v1 artifact ({} KiB), full decode (compatibility shim)",
            suspect_bytes.len() / 1024
        );
        let suspect = decode_model(&suspect_bytes).map_err(|e| e.to_string())?;
        secrets.verify(&suspect)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "matched {} / {} bits  (WER {:.1}%)",
        report.matched_bits,
        report.total_bits,
        report.wer()
    );
    println!(
        "chance-match probability: 10^{:.1}",
        report.log10_p_chance()
    );
    if report.proves_ownership(-9.0) {
        println!("verdict: OWNERSHIP PROVED (p < 1e-9)");
        Ok(())
    } else {
        Err("verdict: ownership NOT proved".to_string())
    }
}

/// One row of the inspect report, format-version independent.
struct LayerSummary {
    in_features: usize,
    out_features: usize,
    bits: u8,
    granularity: String,
    granularity_json: String,
    clamped: usize,
}

fn granularity_json(g: emmark::quant::Granularity) -> String {
    match g {
        emmark::quant::Granularity::PerTensor => "per-tensor".to_string(),
        emmark::quant::Granularity::PerOutChannel => "per-out-channel".to_string(),
        emmark::quant::Granularity::Grouped { group_size } => format!("grouped:{group_size}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    let path = required(opts, "model")?;
    // Sniff the magic: .emfb fleet bundles get the streaming bundle
    // report, everything else goes through the artifact path.
    {
        use std::io::Read as _;
        let mut magic = [0u8; 4];
        let mut f = File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
        // read() may legally return short; fill the 4 bytes (or hit
        // EOF) before deciding the format.
        let mut filled = 0;
        while filled < magic.len() {
            let n = f
                .read(&mut magic[filled..])
                .map_err(|e| format!("reading {path}: {e}"))?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if &magic[..filled] == b"EMFB" {
            return inspect_bundle(path, opts.contains_key("json"));
        }
        if &magic[..filled] == b"EMFM" {
            return inspect_manifest(path, opts.contains_key("json"));
        }
    }
    let bytes = read_file(path)?;
    let version = artifact_version(&bytes).map_err(|e| e.to_string())?;
    // v2: everything comes from the header index without materializing
    // a model; grids are scanned in place for the clamp census. v1
    // artifacts decode fully (compatibility shim).
    let (cfg, scheme, layers) = if version == FORMAT_V2 {
        let sparse = SparseArtifact::open(&bytes).map_err(|e| e.to_string())?;
        let layers = (0..sparse.layer_count())
            .map(|l| {
                let view = sparse.layer_grid(l);
                let entry = &sparse.layer_index()[l];
                LayerSummary {
                    in_features: view.in_features(),
                    out_features: view.out_features(),
                    bits: view.bits(),
                    granularity: format!("{:?}", entry.granularity),
                    granularity_json: granularity_json(entry.granularity),
                    clamped: (0..view.len()).filter(|&f| view.is_clamped_flat(f)).count(),
                }
            })
            .collect::<Vec<_>>();
        (sparse.config().clone(), sparse.scheme().to_string(), layers)
    } else {
        let model = decode_model(&bytes).map_err(|e| e.to_string())?;
        let layers = model
            .layers
            .iter()
            .map(|layer| LayerSummary {
                in_features: layer.in_features(),
                out_features: layer.out_features(),
                bits: layer.bits(),
                granularity: format!("{:?}", layer.granularity()),
                granularity_json: granularity_json(layer.granularity()),
                clamped: (0..layer.len())
                    .filter(|&f| layer.is_clamped_flat(f))
                    .count(),
            })
            .collect::<Vec<_>>();
        (model.cfg.clone(), model.scheme.clone(), layers)
    };
    let total_cells: usize = layers.iter().map(|l| l.in_features * l.out_features).sum();
    let clamped: usize = layers.iter().map(|l| l.clamped).sum();

    if opts.contains_key("json") {
        let layer_objs: Vec<String> = layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                format!(
                    "{{\"index\":{i},\"in_features\":{},\"out_features\":{},\"bits\":{},\
                     \"granularity\":\"{}\",\"clamped_cells\":{}}}",
                    l.in_features, l.out_features, l.bits, l.granularity_json, l.clamped
                )
            })
            .collect();
        println!(
            "{{\"format_version\":{version},\"model\":\"{}\",\"scheme\":\"{}\",\
             \"d_model\":{},\"n_blocks\":{},\"n_heads\":{},\"d_ff\":{},\"vocab_size\":{},\
             \"total_cells\":{total_cells},\"clamped_cells\":{clamped},\"layers\":[{}]}}",
            json_escape(&cfg.name),
            json_escape(&scheme),
            cfg.d_model,
            cfg.n_layers,
            cfg.n_heads,
            cfg.d_ff,
            cfg.vocab_size,
            layer_objs.join(",")
        );
        return Ok(());
    }

    println!("model   : {}", cfg.name);
    println!("format  : v{version}");
    println!("scheme  : {scheme}");
    println!(
        "arch    : d_model {}, {} blocks, {} heads, d_ff {}, vocab {}",
        cfg.d_model, cfg.n_layers, cfg.n_heads, cfg.d_ff, cfg.vocab_size
    );
    println!("layers  : {} quantized", layers.len());
    println!(
        "cells   : {} total, {} at min/max level ({:.1}% unwatermarkable)",
        total_cells,
        clamped,
        100.0 * clamped as f64 / total_cells as f64
    );
    for (i, l) in layers.iter().enumerate().take(4) {
        println!(
            "  layer {i}: {}x{} INT{} {}",
            l.in_features, l.out_features, l.bits, l.granularity
        );
    }
    if layers.len() > 4 {
        println!("  … {} more layers", layers.len() - 4);
    }
    Ok(())
}

/// `emmark inspect` over an EMFB fleet bundle: streams the entries (one
/// artifact resident at a time) and reports the device count, per-device
/// fingerprint signature lengths, and artifact sizes.
fn inspect_bundle(path: &str, json: bool) -> Result<(), String> {
    let file = File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut stream = FleetBundleStream::open(BufReader::new(file)).map_err(|e| e.to_string())?;
    let fp_cfg = *stream.fingerprint_config();
    let declared = stream.device_count();

    struct DeviceRow {
        device_id: String,
        artifact_bytes: usize,
        layers: usize,
        fingerprint_bits: usize,
    }
    // The declared count is untrusted input; cap the pre-allocation.
    let mut rows = Vec::with_capacity(declared.min(1024));
    let mut total_bytes = 0usize;
    for entry in &mut stream {
        let device = entry.map_err(|e| e.to_string())?;
        let sparse = SparseArtifact::open(&device.artifact).map_err(|e| {
            format!(
                "device {}: embedded artifact: {e}",
                device.fingerprint.device_id
            )
        })?;
        let layers = sparse.layer_count();
        total_bytes += device.artifact.len();
        rows.push(DeviceRow {
            device_id: device.fingerprint.device_id,
            artifact_bytes: device.artifact.len(),
            layers,
            fingerprint_bits: fp_cfg.signature_len(layers),
        });
    }

    if json {
        let device_objs: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"device_id\":\"{}\",\"artifact_bytes\":{},\"layers\":{},\
                     \"fingerprint_bits\":{}}}",
                    json_escape(&r.device_id),
                    r.artifact_bytes,
                    r.layers,
                    r.fingerprint_bits
                )
            })
            .collect();
        println!(
            "{{\"kind\":\"fleet-bundle\",\"device_count\":{},\"total_artifact_bytes\":{total_bytes},\
             \"fingerprint\":{{\"bits_per_layer\":{},\"pool_ratio\":{},\"selection_seed\":{}}},\
             \"devices\":[{}]}}",
            rows.len(),
            fp_cfg.bits_per_layer,
            fp_cfg.pool_ratio,
            fp_cfg.selection_seed,
            device_objs.join(",")
        );
        return Ok(());
    }

    println!("bundle  : {path}");
    println!("devices : {} provisioned", rows.len());
    println!(
        "fingerprint: {} bits/layer, pool ratio {}, selection seed {}",
        fp_cfg.bits_per_layer, fp_cfg.pool_ratio, fp_cfg.selection_seed
    );
    println!(
        "payload : {:.1} KiB of device artifacts",
        total_bytes as f64 / 1024.0
    );
    for r in rows.iter().take(8) {
        println!(
            "  {}: {:.1} KiB artifact, {}-bit fingerprint over {} layers",
            r.device_id,
            r.artifact_bytes as f64 / 1024.0,
            r.fingerprint_bits,
            r.layers
        );
    }
    if rows.len() > 8 {
        println!("  … {} more devices", rows.len() - 8);
    }
    Ok(())
}

/// `emmark inspect` over an EMFM shard manifest: the shard table and
/// leak-index shape, without touching the shard files themselves.
fn inspect_manifest(path: &str, json: bool) -> Result<(), String> {
    let manifest = decode_manifest(&read_file(path)?).map_err(|e| e.to_string())?;
    let fp = &manifest.fingerprint_config;
    if json {
        let shard_objs: Vec<String> = manifest
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"first_device\":{},\"device_count\":{},\
                     \"byte_len\":{},\"checksum\":{}}}",
                    json_escape(&s.name),
                    s.first_device,
                    s.device_count,
                    s.byte_len,
                    s.checksum
                )
            })
            .collect();
        println!(
            "{{\"kind\":\"shard-manifest\",\"total_devices\":{},\"shard_count\":{},\
             \"leak_index_cells\":{},\
             \"fingerprint\":{{\"bits_per_layer\":{},\"pool_ratio\":{},\"selection_seed\":{}}},\
             \"shards\":[{}]}}",
            manifest.total_devices,
            manifest.shards.len(),
            manifest.index.cell_count(),
            fp.bits_per_layer,
            fp.pool_ratio,
            fp.selection_seed,
            shard_objs.join(",")
        );
        return Ok(());
    }
    println!("manifest: {path}");
    println!(
        "devices : {} across {} shard(s)",
        manifest.total_devices,
        manifest.shards.len()
    );
    println!(
        "fingerprint: {} bits/layer, pool ratio {}, selection seed {}",
        fp.bits_per_layer, fp.pool_ratio, fp.selection_seed
    );
    println!(
        "leak index: {} fingerprint cells (suspect reads per identification)",
        manifest.index.cell_count()
    );
    for s in manifest.shards.iter().take(8) {
        println!(
            "  {}: devices {}..{}, {:.1} KiB, checksum {:016x}",
            s.name,
            s.first_device,
            s.first_device + s.device_count,
            s.byte_len as f64 / 1024.0,
            s.checksum
        );
    }
    if manifest.shards.len() > 8 {
        println!("  … {} more shards", manifest.shards.len() - 8);
    }
    Ok(())
}

fn cmd_fleet_provision(opts: &HashMap<String, String>) -> Result<(), String> {
    let secrets =
        decode_secrets(&read_file(required(opts, "secrets")?)?).map_err(|e| e.to_string())?;
    let out_dir = PathBuf::from(required(opts, "out-dir")?);
    let devices_raw = required(opts, "devices")?;
    let devices: usize = devices_raw
        .parse()
        .map_err(|_| format!("--devices: cannot parse `{devices_raw}`"))?;
    let prefix = opts.get("prefix").map(String::as_str).unwrap_or("device");
    let fp_bits: usize = parsed(opts, "fp-bits", 3)?;
    let fp_pool: usize = parsed(opts, "fp-pool", 10)?;
    let fp_seed: u64 = parsed(opts, "fp-seed", 0xDE11CE)?;
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;

    let jobs: usize = parsed(opts, "jobs", 0)?;
    let jobs = if jobs == 0 { None } else { Some(jobs) };
    let budget = memory_budget(opts)?;
    let fp_cfg = WatermarkConfig {
        bits_per_layer: fp_bits,
        pool_ratio: fp_pool,
        selection_seed: fp_seed,
        ..Default::default()
    };

    // Score once (ownership locations, fingerprint pools, base artifact
    // encode), then stamp every device by delta-patching the base
    // artifact — O(fingerprint bits) per device.
    let start = std::time::Instant::now();
    let provisioner = FleetProvisioner::new(secrets, fp_cfg).map_err(|e| e.to_string())?;
    let cache_time = start.elapsed();
    let ids: Vec<String> = (0..devices).map(|i| format!("{prefix}-{i:04}")).collect();

    let start = std::time::Instant::now();
    let batch_time;
    if budget.is_some() {
        // Streaming mode: each device artifact is the base artifact
        // with its patches spliced in flight, written straight to its
        // file — no device artifact (let alone the fleet) is ever
        // resident. The bundle, when requested, streams the same way.
        if jobs.is_some() {
            println!("note: --jobs is ignored under --max-resident-mb (streaming mode is serial)");
        }
        println!("streaming provisioning (device artifacts spliced straight to disk)…");
        let mut fingerprints = Vec::with_capacity(ids.len());
        for id in &ids {
            let out = create_file(&out_dir.join(format!("{id}.emqm")))?;
            fingerprints.push(
                provisioner
                    .provision_artifact_into(id, out)
                    .map_err(|e| e.to_string())?,
            );
        }
        batch_time = start.elapsed();
        write_file(
            &out_dir.join("fleet.emfr"),
            &encode_registry(provisioner.fingerprint_config(), &fingerprints),
        )?;
        if let Some(bundle_path) = opts.get("bundle") {
            provisioner
                .provision_bundle_into(&ids, create_file(Path::new(bundle_path))?)
                .map_err(|e| e.to_string())?;
            println!("wrote fleet bundle to {bundle_path} (streamed)");
        }
    } else {
        let provisioned = provisioner.provision_batch(&ids, jobs);
        batch_time = start.elapsed();
        for device in &provisioned {
            write_file(
                &out_dir.join(format!("{}.emqm", device.fingerprint.device_id)),
                &device.artifact,
            )?;
        }
        write_file(
            &out_dir.join("fleet.emfr"),
            &provisioner.registry(&provisioned),
        )?;
        if let Some(bundle_path) = opts.get("bundle") {
            write_file(
                Path::new(bundle_path),
                &emmark::core::vault::encode_fleet_bundle(
                    provisioner.fingerprint_config(),
                    &provisioned,
                ),
            )?;
            println!("wrote fleet bundle to {bundle_path}");
        }
    }
    if let Some(raw) = opts.get("shards") {
        let shard_count: usize = raw
            .parse()
            .map_err(|_| format!("--shards: cannot parse `{raw}`"))?;
        // Sharded registry: device entries split across registry-NNNNN
        // shard files under an EMFM manifest that also persists the
        // fingerprint-cell inverted index. Each shard is written as soon
        // as it is encoded — per-shard memory, not per-fleet.
        let start = std::time::Instant::now();
        let manifest =
            provision_sharded_into(&provisioner, &ids, shard_count, jobs, |name, bytes| {
                std::fs::write(out_dir.join(name), bytes)
            })
            .map_err(|e| e.to_string())?;
        write_file(&out_dir.join("fleet.emfm"), &encode_manifest(&manifest))?;
        println!(
            "wrote sharded registry: {} shard file(s) + fleet.emfm manifest \
             ({} leak-index cells over {} devices) in {:.1} ms",
            manifest.shards.len(),
            manifest.index.cell_count(),
            manifest.total_devices,
            start.elapsed().as_secs_f64() * 1e3
        );
    }
    println!(
        "provisioned {devices} fingerprinted artifacts in {} ({fp_bits} fingerprint bits/layer; \
         score-once cache {:.1} ms, delta-patched batch {:.1} ms)",
        out_dir.display(),
        cache_time.as_secs_f64() * 1e3,
        batch_time.as_secs_f64() * 1e3
    );
    enforce_memory_budget(budget)?;
    println!(
        "try: emmark fleet-verify --secrets SECRETS --registry {0}/fleet.emfr --artifacts {0}",
        out_dir.display()
    );
    Ok(())
}

/// Reads every `.emqm` artifact in a directory, sorted by file name.
fn read_artifacts_dir(dir: &Path) -> Result<(Vec<String>, Vec<Vec<u8>>), String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "emqm"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .emqm artifacts in {}", dir.display()));
    }
    let names = paths
        .iter()
        .map(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        })
        .collect();
    let artifacts = paths
        .iter()
        .map(|p| read_file(&p.display().to_string()))
        .collect::<Result<_, _>>()?;
    Ok((names, artifacts))
}

/// Loads a sharded registry from its manifest path, pulling shard files
/// from the manifest's directory.
fn load_manifest(manifest_path: &str) -> Result<emmark::core::registry::ShardedRegistry, String> {
    let manifest_bytes = read_file(manifest_path)?;
    let dir = Path::new(manifest_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    load_sharded_registry(&manifest_bytes, |name| std::fs::read(dir.join(name)))
        .map_err(|e| format!("loading {manifest_path}: {e}"))
}

/// Where the suspect artifacts for `fleet-verify` come from: a
/// provisioned-fleet bundle that is streamed (twice — fingerprints,
/// then artifacts), or a directory of `.emqm` files read up front.
enum FleetSource {
    Bundle(String),
    Dir(Vec<String>, Vec<Vec<u8>>),
}

fn open_bundle(path: &str) -> Result<FleetBundleStream<BufReader<File>>, String> {
    let file = File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    FleetBundleStream::open(BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_fleet_verify(opts: &HashMap<String, String>) -> Result<(), String> {
    let secrets =
        decode_secrets(&read_file(required(opts, "secrets")?)?).map_err(|e| e.to_string())?;
    let threshold: f64 = parsed(opts, "threshold", -6.0)?;
    let jobs: usize = parsed(opts, "jobs", 0)?;
    let jobs = if jobs == 0 { None } else { Some(jobs) };

    // Three sources — a provisioned-fleet bundle, a sharded EMFM
    // manifest, or a flat registry plus a directory of .emqm files —
    // all resolved to the same raw parts (fingerprint config, device
    // list, optional leak index) so the expensive family cache below is
    // built exactly once, through a single from_parts call site.
    let (fp_cfg, devices, index, source): (_, _, Option<LeakIndex>, FleetSource) =
        if let Some(bundle_path) = opts.get("bundle") {
            // Pass 1: collect the registry entries (artifacts are read
            // and dropped one at a time — never the whole fleet).
            let mut stream = open_bundle(bundle_path)?;
            let fp_cfg = *stream.fingerprint_config();
            // The declared count is untrusted input; cap the
            // pre-allocation and let real entries grow the vector.
            let mut devices = Vec::with_capacity(stream.device_count().min(1024));
            for entry in &mut stream {
                devices.push(entry.map_err(|e| e.to_string())?.fingerprint);
            }
            (
                fp_cfg,
                devices,
                None,
                FleetSource::Bundle(bundle_path.clone()),
            )
        } else if let Some(manifest_path) = opts.get("manifest") {
            // Sharded registry: decode the EMFM manifest, splice the
            // shard files into one device list, and trace leaks through
            // the persisted inverted index instead of scoring every
            // device.
            let registry = load_manifest(manifest_path)?;
            let (names, artifacts) = read_artifacts_dir(Path::new(required(opts, "artifacts")?))?;
            let (fp_cfg, devices, index) = registry.into_parts();
            (
                fp_cfg,
                devices,
                Some(index),
                FleetSource::Dir(names, artifacts),
            )
        } else {
            let (fp_cfg, devices) = decode_registry(&read_file(required(opts, "registry")?)?)
                .map_err(|e| e.to_string())?;
            let (names, artifacts) = read_artifacts_dir(Path::new(required(opts, "artifacts")?))?;
            (fp_cfg, devices, None, FleetSource::Dir(names, artifacts))
        };

    match &index {
        Some(ix) => println!(
            "building the verification cache ({} registered devices, {} leak-index cells)…",
            devices.len(),
            ix.cell_count()
        ),
        None => println!(
            "building the verification cache ({} registered devices)…",
            devices.len()
        ),
    }
    let start = std::time::Instant::now();
    let verifier =
        FleetVerifier::from_parts(secrets, fp_cfg, devices).map_err(|e| e.to_string())?;
    let cache_time = start.elapsed();

    let start = std::time::Instant::now();
    let verdicts: Vec<(String, Result<FleetVerdict, FleetError>)> = match source {
        FleetSource::Bundle(path) => {
            // Pass 2: stream the bundle again, verifying rings of
            // artifacts in parallel.
            let ring = jobs.unwrap_or(4).max(1) * 4;
            let mut stream = open_bundle(&path)?;
            verifier
                .verify_bundle_stream(&mut stream, threshold, jobs, ring)
                .map_err(|e| e.to_string())?
        }
        FleetSource::Dir(names, artifacts) => {
            let batch = match index {
                Some(ix) => IndexedFleetVerifier::new(verifier, ix)
                    .map_err(|e| e.to_string())?
                    .verify_batch(&artifacts, threshold, jobs),
                None => verifier.verify_batch(&artifacts, threshold, jobs),
            };
            names.into_iter().zip(batch).collect()
        }
    };
    let verify_time = start.elapsed();

    println!(
        "\n{:<28} {:>10} {:>12} {:<18} {:>12}",
        "artifact", "WER (%)", "log10(p)", "traced device", "fp WER (%)"
    );
    let mut owned = 0usize;
    let mut traced = 0usize;
    let mut failed = 0usize;
    for (name, verdict) in &verdicts {
        match verdict {
            Ok(v) => {
                if v.proves_ownership(threshold) {
                    owned += 1;
                }
                let (device, fp_wer) = match &v.attribution {
                    Some((d, r)) => {
                        traced += 1;
                        (d.device_id.clone(), format!("{:.1}", r.wer()))
                    }
                    None => ("-".to_string(), "-".to_string()),
                };
                println!(
                    "{:<28} {:>10.1} {:>12.1} {:<18} {:>12}",
                    name,
                    v.ownership.wer(),
                    v.ownership.log10_p_chance(),
                    device,
                    fp_wer
                );
            }
            Err(e) => {
                failed += 1;
                println!("{name:<28} {e}");
            }
        }
    }
    println!(
        "\n{} artifacts: {owned} prove ownership, {traced} traced to a device, {failed} failed \
         (cache {:.1} ms, verify {:.1} ms; v2 artifacts use sparse random-access reads)",
        verdicts.len(),
        cache_time.as_secs_f64() * 1e3,
        verify_time.as_secs_f64() * 1e3
    );
    if failed > 0 {
        return Err(format!("{failed} artifact(s) failed to verify"));
    }
    Ok(())
}

fn cmd_identify_leak(opts: &HashMap<String, String>) -> Result<(), String> {
    let secrets =
        decode_secrets(&read_file(required(opts, "secrets")?)?).map_err(|e| e.to_string())?;
    let threshold: f64 = parsed(opts, "threshold", -6.0)?;
    let registry = load_manifest(required(opts, "manifest")?)?;
    let suspect_bytes = read_file(required(opts, "suspect")?)?;
    let linear = opts.contains_key("linear");
    println!(
        "registry: {} devices, {} leak-index cells",
        registry.devices().len(),
        registry.index().cell_count()
    );

    let start = std::time::Instant::now();
    let verifier = registry.into_verifier(secrets).map_err(|e| e.to_string())?;
    println!(
        "verification cache built in {:.1} ms",
        start.elapsed().as_secs_f64() * 1e3
    );

    // v2 artifacts are probed sparsely (only the indexed fingerprint
    // cells are read); v1 falls back to a full decode.
    let start = std::time::Instant::now();
    let traced = if artifact_version(&suspect_bytes).map_err(|e| e.to_string())? == FORMAT_V2 {
        let sparse = SparseArtifact::open(&suspect_bytes).map_err(|e| e.to_string())?;
        if linear {
            verifier.verifier().identify_leak(&sparse, threshold)
        } else {
            verifier.identify_leak(&sparse, threshold)
        }
    } else {
        let suspect = decode_model(&suspect_bytes).map_err(|e| e.to_string())?;
        if linear {
            verifier.verifier().identify_leak(&suspect, threshold)
        } else {
            verifier.identify_leak(&suspect, threshold)
        }
    }
    .map_err(|e| e.to_string())?
    .map(|(d, r)| (d.clone(), r));
    println!(
        "{} identification in {:.2} ms",
        if linear {
            "linear (every device scored)"
        } else {
            "indexed (bucket-narrowed)"
        },
        start.elapsed().as_secs_f64() * 1e3
    );

    match traced {
        Some((device, report)) => {
            println!(
                "traced to {}: {} / {} fingerprint bits (WER {:.1}%), p = 10^{:.1}",
                device.device_id,
                report.matched_bits,
                report.total_bits,
                report.wer(),
                report.log10_p_chance()
            );
            Ok(())
        }
        None => Err(format!(
            "no registered device clears the 10^{threshold} threshold"
        )),
    }
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let defaults = ServiceConfig::default();
    let workers: usize = parsed(opts, "workers", 0)?;
    let cfg = ServiceConfig {
        workers: if workers == 0 {
            defaults.workers
        } else {
            workers
        },
        queue_capacity: parsed(opts, "queue", defaults.queue_capacity)?,
        cache_capacity: parsed(opts, "cache-families", defaults.cache_capacity)?,
        max_resident_bytes: memory_budget(opts)?.map(|mib| mib as u64 * 1024 * 1024),
        retry_after_ms: parsed(opts, "retry-after-ms", defaults.retry_after_ms)?,
    };
    eprintln!(
        "emmarkd: {} workers, queue {}, {} resident model families{}",
        cfg.workers,
        cfg.queue_capacity,
        cfg.cache_capacity,
        match cfg.max_resident_bytes {
            Some(b) => format!(", {} MiB resident budget", b / (1024 * 1024)),
            None => String::new(),
        }
    );
    let service = Service::start(cfg);
    match opts.get("socket") {
        Some(path) => serve_socket(service, path),
        None => serve_stdio(&service),
    }
}

/// Serves framed requests over stdin/stdout: one length-prefixed
/// request frame in, one response frame out (order may differ from the
/// request order — responses carry the request id). EOF on stdin
/// drains the queue and shuts down.
fn serve_stdio(service: &Service) -> Result<(), String> {
    use std::io::Write as _;
    let stdout = std::sync::Arc::new(std::sync::Mutex::new(std::io::stdout()));
    let mut stdin = std::io::stdin().lock();
    loop {
        match read_frame(&mut stdin) {
            Ok(Some(payload)) => {
                let out = std::sync::Arc::clone(&stdout);
                service.submit(
                    payload,
                    Box::new(move |resp| {
                        let mut w = out.lock().unwrap();
                        let _ = write_frame(&mut *w, &resp);
                        let _ = w.flush();
                    }),
                );
            }
            Ok(None) => break,
            Err(e) => return Err(format!("reading request frame: {e}")),
        }
        if service.is_stopped() {
            break;
        }
    }
    // A shutdown request drains in-flight work before stopping; if a
    // client already shut us down this is answered with a harmless
    // "shutting down" error that nobody reads.
    let _ = service.request(u64::MAX, &Request::Shutdown);
    service.wait_stopped();
    eprintln!("emmarkd: drained, exiting");
    Ok(())
}

/// Serves framed requests over a Unix socket, one handler thread per
/// connection. A shutdown request (from any connection) drains the
/// queue, stops the pool, and unblocks the accept loop.
fn serve_socket(service: Service, path: &str) -> Result<(), String> {
    use std::os::unix::fs::FileTypeExt as _;
    use std::os::unix::net::{UnixListener, UnixStream};
    // A stale socket file from a crashed daemon would make bind fail, but
    // only reclaim the path if it really is an abandoned socket: refuse to
    // clobber a non-socket file (likely a mistyped --socket) or to steal
    // the address out from under a daemon that still answers.
    if let Ok(meta) = std::fs::symlink_metadata(path) {
        if !meta.file_type().is_socket() {
            return Err(format!(
                "--socket {path} exists and is not a socket; refusing to remove it"
            ));
        }
        if UnixStream::connect(path).is_ok() {
            return Err(format!(
                "another daemon is already listening on {path}; refusing to replace it"
            ));
        }
        std::fs::remove_file(path).map_err(|e| format!("removing stale socket {path}: {e}"))?;
    }
    let listener = UnixListener::bind(path).map_err(|e| format!("binding {path}: {e}"))?;
    eprintln!("emmarkd: listening on {path}");
    let service = std::sync::Arc::new(service);

    // accept() has no timeout, so a helper thread waits for the pool to
    // stop and then pokes the socket to unblock the final accept.
    let waker = {
        let service = std::sync::Arc::clone(&service);
        let path = path.to_string();
        std::thread::Builder::new()
            .name("emmarkd-waker".into())
            .stack_size(256 * 1024)
            .spawn(move || {
                service.wait_stopped();
                let _ = UnixStream::connect(&path);
            })
            .map_err(|e| format!("spawning waker thread: {e}"))?
    };

    let mut handlers = Vec::new();
    for conn in listener.incoming() {
        if service.is_stopped() {
            break;
        }
        let conn = match conn {
            Ok(c) => c,
            Err(e) => {
                eprintln!("emmarkd: accept failed: {e}");
                continue;
            }
        };
        let service = std::sync::Arc::clone(&service);
        let handle = std::thread::Builder::new()
            .name("emmarkd-conn".into())
            .stack_size(512 * 1024)
            .spawn(move || serve_conn(&service, conn))
            .map_err(|e| format!("spawning connection thread: {e}"))?;
        handlers.push(handle);
        // Reap handles whose connections already hung up, so a long-lived
        // daemon holds one JoinHandle per live connection, not per
        // connection ever served.
        let mut i = 0;
        while i < handlers.len() {
            if handlers[i].is_finished() {
                let _ = handlers.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
    let _ = waker.join();
    let _ = std::fs::remove_file(path);
    eprintln!("emmarkd: drained, exiting");
    Ok(())
}

fn serve_conn(service: &Service, conn: std::os::unix::net::UnixStream) {
    let writer = match conn.try_clone() {
        Ok(w) => std::sync::Arc::new(std::sync::Mutex::new(w)),
        Err(e) => {
            eprintln!("emmarkd: cloning connection: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(conn);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => {
                let out = std::sync::Arc::clone(&writer);
                service.submit(
                    payload,
                    Box::new(move |resp| {
                        let mut w = out.lock().unwrap();
                        let _ = write_frame(&mut *w, &resp);
                    }),
                );
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("emmarkd: dropping connection: {e}");
                break;
            }
        }
        if service.is_stopped() {
            break;
        }
    }
}

fn cmd_attack(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut model =
        decode_model(&read_file(required(opts, "model")?)?).map_err(|e| e.to_string())?;
    let per_layer_raw = required(opts, "per-layer")?;
    let per_layer: usize = per_layer_raw
        .parse()
        .map_err(|_| format!("--per-layer: cannot parse `{per_layer_raw}`"))?;
    let seed: u64 = parsed(opts, "seed", 666)?;
    let touched = overwrite_attack(&mut model, &OverwriteConfig { per_layer, seed });
    let out = required(opts, "out")?;
    write_file(Path::new(out), &encode_model(&model))?;
    println!("overwrote {touched} cells; attacked model written to {out}");
    Ok(())
}
