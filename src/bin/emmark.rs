//! `emmark` — command-line front end for the EmMark pipeline.
//!
//! ```text
//! emmark demo --out-dir DIR [--bits N] [--seed S]   build a demo: train, quantize,
//!                                                   watermark; writes deployed.emqm,
//!                                                   secrets.emws, original.emqm
//! emmark verify --secrets FILE --suspect FILE       ownership proof (Eqs. 6–8);
//!                                                   v2 artifacts are probed sparsely
//! emmark inspect --model FILE [--json]              layer/scheme/bit summary from the
//!                                                   v2 header index (machine-readable
//!                                                   with --json)
//! emmark attack --model FILE --out FILE --per-layer N [--seed S]
//!                                                   parameter-overwriting attack
//! emmark fleet-provision --secrets FILE --out-dir DIR --devices N
//!                        [--prefix NAME] [--fp-bits N] [--fp-pool N] [--fp-seed S]
//!                        [--jobs N] [--bundle FILE]  score-once/insert-many batch
//!                                                   provisioning: fingerprint N
//!                                                   device artifacts by delta-
//!                                                   patching the base artifact,
//!                                                   write the fleet registry (and
//!                                                   optionally one bundle file)
//! emmark fleet-verify --secrets FILE (--registry FILE --artifacts DIR | --bundle FILE)
//!                     [--threshold L] [--jobs N]    parallel batch verification +
//!                                                   leak tracing over a directory
//!                                                   or a provisioned-fleet bundle
//! ```
//!
//! The demo subcommand exists so the whole flow can be driven without
//! writing a line of Rust; `verify` is the command a proprietor would
//! actually run against a seized model file, and `fleet-verify` is its
//! fleet-scale counterpart: every `.emqm` artifact in a directory is
//! checked for the ownership watermark and traced to the registered
//! device that leaked it, in parallel, sharing one location cache.

use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::core::deploy::{
    artifact_version, decode_model, encode_model, SparseArtifact, FORMAT_V2,
};
use emmark::core::fleet::{decode_registry, FleetVerifier};
use emmark::core::provision::FleetProvisioner;
use emmark::core::vault::{
    decode_fleet_bundle, decode_secrets, encode_fleet_bundle, encode_secrets,
};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "demo" => cmd_demo(&opts),
        "verify" => cmd_verify(&opts),
        "inspect" => cmd_inspect(&opts),
        "attack" => cmd_attack(&opts),
        "fleet-provision" => cmd_fleet_provision(&opts),
        "fleet-verify" => cmd_fleet_verify(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
emmark — watermarking for embedded quantized LLMs (DAC 2024 reproduction)

USAGE:
  emmark demo    --out-dir DIR [--bits N] [--seed S]
  emmark verify  --secrets FILE --suspect FILE
  emmark inspect --model FILE [--json]
  emmark attack  --model FILE --out FILE --per-layer N [--seed S]
  emmark fleet-provision --secrets FILE --out-dir DIR --devices N
                         [--prefix NAME] [--fp-bits N] [--fp-pool N] [--fp-seed S]
                         [--jobs N] [--bundle FILE]
  emmark fleet-verify    --secrets FILE (--registry FILE --artifacts DIR | --bundle FILE)
                         [--threshold L] [--jobs N]";

/// Options that are flags (present or absent), not key-value pairs.
const BOOL_FLAGS: &[&str] = &["json"];

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected an option, found `{key}`"));
        };
        if BOOL_FLAGS.contains(&name) {
            opts.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("option --{name} needs a value"))?;
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

fn required<'o>(opts: &'o HashMap<String, String>, name: &str) -> Result<&'o str, String> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{name}"))
}

fn parsed<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{raw}`")),
    }
}

fn read_file(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn cmd_demo(opts: &HashMap<String, String>) -> Result<(), String> {
    let out_dir = PathBuf::from(required(opts, "out-dir")?);
    let bits: usize = parsed(opts, "bits", 8)?;
    let seed: u64 = parsed(opts, "seed", 2024)?;
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;

    println!("training a nano-LM on SynWiki…");
    let corpus = Corpus::sample(Grammar::synwiki(seed), 12_000, 1_000, 2_000);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut model = TransformerModel::new(cfg);
    train(
        &mut model,
        &corpus,
        &TrainConfig {
            steps: 200,
            batch_size: 8,
            seq_len: 24,
            ..TrainConfig::default()
        },
    );
    println!("quantizing with AWQ INT4 and capturing A_f…");
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = model.collect_activation_stats(&calibration);
    let quantized = awq(&model, &stats, &AwqConfig::default());

    println!("inserting the watermark ({bits} bits/layer)…");
    let wm_cfg = WatermarkConfig {
        bits_per_layer: bits,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(quantized, stats, wm_cfg, seed ^ 0x51C);
    let deployed = secrets
        .watermark_for_deployment()
        .map_err(|e| e.to_string())?;

    write_file(
        &out_dir.join("original.emqm"),
        &encode_model(&secrets.original),
    )?;
    write_file(&out_dir.join("deployed.emqm"), &encode_model(&deployed))?;
    write_file(&out_dir.join("secrets.emws"), &encode_secrets(&secrets))?;
    println!(
        "wrote {}/original.emqm, deployed.emqm, secrets.emws ({} watermark bits)",
        out_dir.display(),
        secrets.signature.len()
    );
    println!(
        "try: emmark verify --secrets {0}/secrets.emws --suspect {0}/deployed.emqm",
        out_dir.display()
    );
    Ok(())
}

fn cmd_verify(opts: &HashMap<String, String>) -> Result<(), String> {
    let secrets =
        decode_secrets(&read_file(required(opts, "secrets")?)?).map_err(|e| e.to_string())?;
    let suspect_bytes = read_file(required(opts, "suspect")?)?;
    // v2 artifacts are probed sparsely: only the header index and the
    // few hundred watermark cells are read. v1 falls back to a full
    // decode; both paths produce the same report bit for bit.
    let report = if artifact_version(&suspect_bytes).map_err(|e| e.to_string())? == FORMAT_V2 {
        let sparse = SparseArtifact::open(&suspect_bytes).map_err(|e| e.to_string())?;
        println!(
            "suspect : v2 artifact ({} KiB), sparse random-access extraction",
            suspect_bytes.len() / 1024
        );
        secrets.verify(&sparse)
    } else {
        println!(
            "suspect : v1 artifact ({} KiB), full decode (compatibility shim)",
            suspect_bytes.len() / 1024
        );
        let suspect = decode_model(&suspect_bytes).map_err(|e| e.to_string())?;
        secrets.verify(&suspect)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "matched {} / {} bits  (WER {:.1}%)",
        report.matched_bits,
        report.total_bits,
        report.wer()
    );
    println!(
        "chance-match probability: 10^{:.1}",
        report.log10_p_chance()
    );
    if report.proves_ownership(-9.0) {
        println!("verdict: OWNERSHIP PROVED (p < 1e-9)");
        Ok(())
    } else {
        Err("verdict: ownership NOT proved".to_string())
    }
}

/// One row of the inspect report, format-version independent.
struct LayerSummary {
    in_features: usize,
    out_features: usize,
    bits: u8,
    granularity: String,
    granularity_json: String,
    clamped: usize,
}

fn granularity_json(g: emmark::quant::Granularity) -> String {
    match g {
        emmark::quant::Granularity::PerTensor => "per-tensor".to_string(),
        emmark::quant::Granularity::PerOutChannel => "per-out-channel".to_string(),
        emmark::quant::Granularity::Grouped { group_size } => format!("grouped:{group_size}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    let bytes = read_file(required(opts, "model")?)?;
    let version = artifact_version(&bytes).map_err(|e| e.to_string())?;
    // v2: everything comes from the header index without materializing
    // a model; grids are scanned in place for the clamp census. v1
    // artifacts decode fully (compatibility shim).
    let (cfg, scheme, layers) = if version == FORMAT_V2 {
        let sparse = SparseArtifact::open(&bytes).map_err(|e| e.to_string())?;
        let layers = (0..sparse.layer_count())
            .map(|l| {
                let view = sparse.layer_grid(l);
                let entry = &sparse.layer_index()[l];
                LayerSummary {
                    in_features: view.in_features(),
                    out_features: view.out_features(),
                    bits: view.bits(),
                    granularity: format!("{:?}", entry.granularity),
                    granularity_json: granularity_json(entry.granularity),
                    clamped: (0..view.len()).filter(|&f| view.is_clamped_flat(f)).count(),
                }
            })
            .collect::<Vec<_>>();
        (sparse.config().clone(), sparse.scheme().to_string(), layers)
    } else {
        let model = decode_model(&bytes).map_err(|e| e.to_string())?;
        let layers = model
            .layers
            .iter()
            .map(|layer| LayerSummary {
                in_features: layer.in_features(),
                out_features: layer.out_features(),
                bits: layer.bits(),
                granularity: format!("{:?}", layer.granularity()),
                granularity_json: granularity_json(layer.granularity()),
                clamped: (0..layer.len())
                    .filter(|&f| layer.is_clamped_flat(f))
                    .count(),
            })
            .collect::<Vec<_>>();
        (model.cfg.clone(), model.scheme.clone(), layers)
    };
    let total_cells: usize = layers.iter().map(|l| l.in_features * l.out_features).sum();
    let clamped: usize = layers.iter().map(|l| l.clamped).sum();

    if opts.contains_key("json") {
        let layer_objs: Vec<String> = layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                format!(
                    "{{\"index\":{i},\"in_features\":{},\"out_features\":{},\"bits\":{},\
                     \"granularity\":\"{}\",\"clamped_cells\":{}}}",
                    l.in_features, l.out_features, l.bits, l.granularity_json, l.clamped
                )
            })
            .collect();
        println!(
            "{{\"format_version\":{version},\"model\":\"{}\",\"scheme\":\"{}\",\
             \"d_model\":{},\"n_blocks\":{},\"n_heads\":{},\"d_ff\":{},\"vocab_size\":{},\
             \"total_cells\":{total_cells},\"clamped_cells\":{clamped},\"layers\":[{}]}}",
            json_escape(&cfg.name),
            json_escape(&scheme),
            cfg.d_model,
            cfg.n_layers,
            cfg.n_heads,
            cfg.d_ff,
            cfg.vocab_size,
            layer_objs.join(",")
        );
        return Ok(());
    }

    println!("model   : {}", cfg.name);
    println!("format  : v{version}");
    println!("scheme  : {scheme}");
    println!(
        "arch    : d_model {}, {} blocks, {} heads, d_ff {}, vocab {}",
        cfg.d_model, cfg.n_layers, cfg.n_heads, cfg.d_ff, cfg.vocab_size
    );
    println!("layers  : {} quantized", layers.len());
    println!(
        "cells   : {} total, {} at min/max level ({:.1}% unwatermarkable)",
        total_cells,
        clamped,
        100.0 * clamped as f64 / total_cells as f64
    );
    for (i, l) in layers.iter().enumerate().take(4) {
        println!(
            "  layer {i}: {}x{} INT{} {}",
            l.in_features, l.out_features, l.bits, l.granularity
        );
    }
    if layers.len() > 4 {
        println!("  … {} more layers", layers.len() - 4);
    }
    Ok(())
}

fn cmd_fleet_provision(opts: &HashMap<String, String>) -> Result<(), String> {
    let secrets =
        decode_secrets(&read_file(required(opts, "secrets")?)?).map_err(|e| e.to_string())?;
    let out_dir = PathBuf::from(required(opts, "out-dir")?);
    let devices: usize = required(opts, "devices")?
        .parse()
        .map_err(|_| "--devices: not a number".to_string())?;
    let prefix = opts.get("prefix").map(String::as_str).unwrap_or("device");
    let fp_bits: usize = parsed(opts, "fp-bits", 3)?;
    let fp_pool: usize = parsed(opts, "fp-pool", 10)?;
    let fp_seed: u64 = parsed(opts, "fp-seed", 0xDE11CE)?;
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;

    let jobs: usize = parsed(opts, "jobs", 0)?;
    let jobs = if jobs == 0 { None } else { Some(jobs) };
    let fp_cfg = WatermarkConfig {
        bits_per_layer: fp_bits,
        pool_ratio: fp_pool,
        selection_seed: fp_seed,
        ..Default::default()
    };

    // Score once (ownership locations, fingerprint pools, base artifact
    // encode), then stamp every device by delta-patching the base
    // artifact — O(fingerprint bits) per device, in parallel.
    let start = std::time::Instant::now();
    let provisioner = FleetProvisioner::new(secrets, fp_cfg).map_err(|e| e.to_string())?;
    let cache_time = start.elapsed();
    let ids: Vec<String> = (0..devices).map(|i| format!("{prefix}-{i:04}")).collect();
    let start = std::time::Instant::now();
    let provisioned = provisioner.provision_batch(&ids, jobs);
    let batch_time = start.elapsed();

    for device in &provisioned {
        write_file(
            &out_dir.join(format!("{}.emqm", device.fingerprint.device_id)),
            &device.artifact,
        )?;
    }
    write_file(
        &out_dir.join("fleet.emfr"),
        &provisioner.registry(&provisioned),
    )?;
    if let Some(bundle_path) = opts.get("bundle") {
        write_file(
            Path::new(bundle_path),
            &encode_fleet_bundle(provisioner.fingerprint_config(), &provisioned),
        )?;
        println!("wrote fleet bundle to {bundle_path}");
    }
    println!(
        "provisioned {devices} fingerprinted artifacts in {} ({fp_bits} fingerprint bits/layer; \
         score-once cache {:.1} ms, delta-patched batch {:.1} ms)",
        out_dir.display(),
        cache_time.as_secs_f64() * 1e3,
        batch_time.as_secs_f64() * 1e3
    );
    println!(
        "try: emmark fleet-verify --secrets SECRETS --registry {0}/fleet.emfr --artifacts {0}",
        out_dir.display()
    );
    Ok(())
}

fn cmd_fleet_verify(opts: &HashMap<String, String>) -> Result<(), String> {
    let secrets =
        decode_secrets(&read_file(required(opts, "secrets")?)?).map_err(|e| e.to_string())?;
    let threshold: f64 = parsed(opts, "threshold", -6.0)?;
    let jobs: usize = parsed(opts, "jobs", 0)?;
    let jobs = if jobs == 0 { None } else { Some(jobs) };

    // Two sources: a provisioned-fleet bundle (registry + artifacts in
    // one file), or a registry file plus a directory of .emqm files.
    let (fp_cfg, devices, names, artifacts): (_, _, Vec<String>, Vec<Vec<u8>>) =
        if let Some(bundle_path) = opts.get("bundle") {
            let bundle =
                decode_fleet_bundle(&read_file(bundle_path)?).map_err(|e| e.to_string())?;
            let names = bundle
                .devices
                .iter()
                .map(|d| d.fingerprint.device_id.clone())
                .collect();
            let (devices, artifacts) = bundle
                .devices
                .into_iter()
                .map(|d| (d.fingerprint, d.artifact))
                .unzip();
            (bundle.fingerprint_config, devices, names, artifacts)
        } else {
            let (fp_cfg, devices) = decode_registry(&read_file(required(opts, "registry")?)?)
                .map_err(|e| e.to_string())?;
            let artifacts_dir = PathBuf::from(required(opts, "artifacts")?);
            let mut paths: Vec<PathBuf> = std::fs::read_dir(&artifacts_dir)
                .map_err(|e| format!("reading {}: {e}", artifacts_dir.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "emqm"))
                .collect();
            paths.sort();
            if paths.is_empty() {
                return Err(format!("no .emqm artifacts in {}", artifacts_dir.display()));
            }
            let names = paths
                .iter()
                .map(|p| {
                    p.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                })
                .collect();
            let artifacts = paths
                .iter()
                .map(|p| read_file(&p.display().to_string()))
                .collect::<Result<_, _>>()?;
            (fp_cfg, devices, names, artifacts)
        };

    println!(
        "building the verification cache ({} registered devices)…",
        devices.len()
    );
    let start = std::time::Instant::now();
    let verifier =
        FleetVerifier::from_parts(secrets, fp_cfg, devices).map_err(|e| e.to_string())?;
    let cache_time = start.elapsed();

    let start = std::time::Instant::now();
    let verdicts = verifier.verify_batch(&artifacts, threshold, jobs);
    let verify_time = start.elapsed();

    println!(
        "\n{:<28} {:>10} {:>12} {:<18} {:>12}",
        "artifact", "WER (%)", "log10(p)", "traced device", "fp WER (%)"
    );
    let mut owned = 0usize;
    let mut traced = 0usize;
    let mut failed = 0usize;
    for (name, verdict) in names.iter().zip(&verdicts) {
        match verdict {
            Ok(v) => {
                if v.proves_ownership(threshold) {
                    owned += 1;
                }
                let (device, fp_wer) = match &v.attribution {
                    Some((d, r)) => {
                        traced += 1;
                        (d.device_id.clone(), format!("{:.1}", r.wer()))
                    }
                    None => ("-".to_string(), "-".to_string()),
                };
                println!(
                    "{:<28} {:>10.1} {:>12.1} {:<18} {:>12}",
                    name,
                    v.ownership.wer(),
                    v.ownership.log10_p_chance(),
                    device,
                    fp_wer
                );
            }
            Err(e) => {
                failed += 1;
                println!("{name:<28} {e}");
            }
        }
    }
    println!(
        "\n{} artifacts: {owned} prove ownership, {traced} traced to a device, {failed} failed \
         (cache {:.1} ms, verify {:.1} ms; v2 artifacts use sparse random-access reads)",
        verdicts.len(),
        cache_time.as_secs_f64() * 1e3,
        verify_time.as_secs_f64() * 1e3
    );
    if failed > 0 {
        return Err(format!("{failed} artifact(s) failed to verify"));
    }
    Ok(())
}

fn cmd_attack(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut model =
        decode_model(&read_file(required(opts, "model")?)?).map_err(|e| e.to_string())?;
    let per_layer: usize = required(opts, "per-layer")?
        .parse()
        .map_err(|_| "--per-layer: not a number".to_string())?;
    let seed: u64 = parsed(opts, "seed", 666)?;
    let touched = overwrite_attack(&mut model, &OverwriteConfig { per_layer, seed });
    let out = required(opts, "out")?;
    write_file(Path::new(out), &encode_model(&model))?;
    println!("overwrote {touched} cells; attacked model written to {out}");
    Ok(())
}
