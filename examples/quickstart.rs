//! Quickstart: train a nano-LM, quantize it to INT4 with AWQ, watermark
//! it with EmMark, deploy it, and prove ownership.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use emmark::core::deploy::{decode_model, encode_model};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::eval::report::{evaluate_quality, EvalConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small language model on the synthetic SynWiki corpus.
    println!("[1/6] training a nano transformer on SynWiki…");
    let corpus = Corpus::sample(Grammar::synwiki(7), 12_000, 1_000, 2_000);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut model = TransformerModel::new(cfg);
    let report = train(
        &mut model,
        &corpus,
        &TrainConfig {
            steps: 200,
            batch_size: 8,
            seq_len: 24,
            ..TrainConfig::default()
        },
    );
    println!(
        "      loss {:.3} -> {:.3} over {} steps",
        report.initial_loss, report.final_loss, report.steps
    );

    // 2. Capture the full-precision activation profile A_f (the secret
    //    ingredient of EmMark's saliency score) and quantize with AWQ.
    println!("[2/6] capturing A_f and quantizing to INT4 with AWQ…");
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = model.collect_activation_stats(&calibration);
    let quantized = awq(&model, &stats, &AwqConfig::default());

    // 3. Watermark before deployment.
    println!("[3/6] inserting the EmMark watermark…");
    let wm_cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(quantized, stats, wm_cfg, /*signature seed*/ 2024);
    let deployed = secrets.watermark_for_deployment()?;
    println!(
        "      {} bits across {} quantized layers",
        secrets.signature.len(),
        deployed.layer_count()
    );

    // 4. Check that quality is preserved.
    println!("[4/6] evaluating fidelity…");
    let eval_cfg = EvalConfig {
        ppl_tokens: 1500,
        task_items: 60,
        ..EvalConfig::default()
    };
    let before = evaluate_quality(&secrets.original, &corpus, &eval_cfg);
    let after = evaluate_quality(&deployed, &corpus, &eval_cfg);
    println!(
        "      PPL {:.3} -> {:.3} | zero-shot acc {:.2}% -> {:.2}%",
        before.ppl, after.ppl, before.zero_shot_acc, after.zero_shot_acc
    );

    // 5. Ship the model: serialize to the deployable byte format and
    //    read it back, as an edge device would.
    println!("[5/6] serializing the deployed artifact…");
    let bytes = encode_model(&deployed);
    println!("      {} bytes on the wire", bytes.len());
    let on_device = decode_model(&bytes)?;

    // 6. Ownership proof against the deployed weights.
    println!("[6/6] extracting the watermark from the deployed weights…");
    let proof = secrets.verify(&on_device)?;
    println!(
        "      WER {:.1}% ({} of {} bits), chance probability 10^{:.1}",
        proof.wer(),
        proof.matched_bits,
        proof.total_bits,
        proof.log10_p_chance()
    );
    assert_eq!(proof.wer(), 100.0);
    println!("ownership proved.");
    Ok(())
}
