//! Fleet tracing: one watermarked model, many fingerprinted devices.
//!
//! The paper protects *ownership*; a distributor also wants *traitor
//! tracing* — when a copy surfaces on the internet, which customer
//! leaked it? This example provisions a small fleet where every device
//! carries (a) the shared EmMark ownership watermark, untouched, and
//! (b) a device-unique fingerprint at base-disjoint locations.
//!
//! ```sh
//! cargo run --release --example fleet_tracing
//! ```

use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::core::deploy::encode_model;
use emmark::core::fingerprint::Fleet;
use emmark::core::fleet::FleetVerifier;
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the base: train -> AWQ INT4 -> ownership watermark…");
    let corpus = Corpus::sample(Grammar::synwiki(99), 12_000, 1_000, 1_500);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut fp = TransformerModel::new(cfg);
    train(
        &mut fp,
        &corpus,
        &TrainConfig {
            steps: 200,
            batch_size: 8,
            seq_len: 24,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp.collect_activation_stats(&calibration);
    let quantized = awq(&fp, &stats, &AwqConfig::default());
    let base = OwnerSecrets::new(
        quantized,
        stats,
        WatermarkConfig {
            bits_per_layer: 8,
            pool_ratio: 20,
            ..Default::default()
        },
        0xBA5E,
    );
    let mut fleet = Fleet::new(
        base,
        WatermarkConfig {
            bits_per_layer: 6,
            pool_ratio: 20,
            selection_seed: 0xD1CE,
            ..Default::default()
        },
    );

    let customers = [
        "acme-robotics",
        "globex-iot",
        "initech-devices",
        "umbrella-edge",
    ];
    println!("\nprovisioning {} devices…", customers.len());
    let mut shipments = Vec::new();
    for id in customers {
        let deployment = fleet.provision(id)?;
        let ownership = fleet.base.verify(&deployment)?;
        println!(
            "  {id:<16}: base watermark {:>5.1}% WER (must be 100), fingerprint {} bits",
            ownership.wer(),
            fleet.fingerprint_config.bits_per_layer * deployment.layer_count()
        );
        shipments.push(deployment);
    }

    println!("\na leak appears — lightly tampered (10 overwrites/layer) copy of one device:");
    let mut leaked = shipments[1].clone();
    overwrite_attack(
        &mut leaked,
        &OverwriteConfig {
            per_layer: 10,
            seed: 0x1EA6,
        },
    );
    match fleet.identify_leak(&leaked, -6.0)? {
        Some((device, report)) => {
            println!(
                "  attributed to {:<16} (fingerprint WER {:.1}%, p_chance 10^{:.1})",
                device.device_id,
                report.wer(),
                report.log10_p_chance()
            );
            assert_eq!(device.device_id, "globex-iot");
        }
        None => println!("  no device attributable — investigate further"),
    }

    println!("\nand the ownership claim on the leaked copy:");
    let ownership = fleet.base.verify(&leaked)?;
    println!(
        "  owner WER {:.1}%, p_chance 10^{:.1} — ownership and attribution both stand.",
        ownership.wer(),
        ownership.log10_p_chance()
    );

    // At deployment scale, checks run through the batch engine: the
    // scoring/pool/location work is cached once per model family, and
    // artifacts are verified in parallel straight from their deployed
    // bytes.
    println!("\nre-auditing every shipment through the fleet engine:");
    let artifacts: Vec<Vec<u8>> = shipments.iter().map(|m| encode_model(m).to_vec()).collect();
    let verifier = FleetVerifier::new(&fleet)?;
    for (id, verdict) in customers
        .iter()
        .zip(verifier.verify_batch(&artifacts, -6.0, None))
    {
        let verdict = verdict?;
        let traced = verdict
            .attribution
            .as_ref()
            .map(|(d, _)| d.device_id.as_str())
            .unwrap_or("-");
        println!(
            "  {id:<16}: ownership WER {:>5.1}%, traced to {traced}",
            verdict.ownership.wer()
        );
        assert_eq!(
            traced, *id,
            "audit must attribute each shipment to its own device"
        );
    }
    Ok(())
}
