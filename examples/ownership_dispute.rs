//! Ownership dispute: an end-to-end IP-theft scenario.
//!
//! A proprietor deploys a watermarked INT4 model to edge devices. A
//! malicious end-user (full local access, knows the algorithm, lacks
//! the secrets) tries in turn: parameter overwriting, re-watermarking,
//! and forging a counterfeit claim. The proprietor's proof survives all
//! three; the counterfeit dies at reproduction validation.
//!
//! ```sh
//! cargo run --release --example ownership_dispute
//! ```

use emmark::attacks::forging::{
    forge_counterfeit_claim, naive_delta_check, validate_claim, OwnershipClaim,
};
use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::attacks::rewatermark::{rewatermark_attack, RewatermarkConfig};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::eval::report::{evaluate_quality, EvalConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== setting the scene: proprietor trains, quantizes, watermarks ===");
    let corpus = Corpus::sample(Grammar::synwiki(11), 12_000, 1_000, 2_000);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut fp_model = TransformerModel::new(cfg);
    train(
        &mut fp_model,
        &corpus,
        &TrainConfig {
            steps: 200,
            batch_size: 8,
            seq_len: 24,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp_model.collect_activation_stats(&calibration);
    let quantized = awq(&fp_model, &stats, &AwqConfig::default());
    let secrets = OwnerSecrets::new(
        quantized,
        stats,
        WatermarkConfig {
            bits_per_layer: 8,
            pool_ratio: 20,
            ..Default::default()
        },
        0xD15B,
    );
    let deployed = secrets.watermark_for_deployment()?;
    let eval_cfg = EvalConfig {
        ppl_tokens: 1500,
        task_items: 60,
        ..EvalConfig::default()
    };
    let healthy = evaluate_quality(&deployed, &corpus, &eval_cfg);
    println!(
        "deployed model: PPL {:.2}, zero-shot {:.1}%, watermark WER {:.1}%\n",
        healthy.ppl,
        healthy.zero_shot_acc,
        secrets.verify(&deployed)?.wer()
    );

    println!("=== attack 1: blind parameter overwriting ===");
    let mut attacked = deployed.clone();
    overwrite_attack(
        &mut attacked,
        &OverwriteConfig {
            per_layer: 24,
            seed: 666,
        },
    );
    let q = evaluate_quality(&attacked, &corpus, &eval_cfg);
    let proof = secrets.verify(&attacked)?;
    println!(
        "after bumping 24 cells/layer: PPL {:.2} (was {:.2}), WER {:.1}%, p_chance 10^{:.1}",
        q.ppl,
        healthy.ppl,
        proof.wer(),
        proof.log10_p_chance()
    );
    assert!(proof.proves_ownership(-9.0));
    println!("ownership still provable.\n");

    println!("=== attack 2: re-watermarking with adversary parameters ===");
    // The adversary measures activations through the *quantized* model
    // (no access to the full-precision one) and uses α=1, β=1.5, seed 22.
    let adv_calib: Vec<Vec<u32>> = corpus
        .test
        .chunks(24)
        .take(12)
        .map(|c| c.to_vec())
        .collect();
    let adv_stats = deployed.collect_activation_stats(&adv_calib);
    let mut rewatermarked = deployed.clone();
    rewatermark_attack(
        &mut rewatermarked,
        &adv_stats,
        &RewatermarkConfig {
            per_layer: 16,
            ..Default::default()
        },
    );
    let q = evaluate_quality(&rewatermarked, &corpus, &eval_cfg);
    let proof = secrets.verify(&rewatermarked)?;
    println!(
        "after re-watermarking 16 cells/layer: PPL {:.2}, owner WER {:.1}%, p_chance 10^{:.1}",
        q.ppl,
        proof.wer(),
        proof.log10_p_chance()
    );
    assert!(proof.proves_ownership(-9.0));
    println!("owner's signature survives the adversary's insertion.\n");

    println!("=== attack 3: forging a counterfeit claim ===");
    let forged = forge_counterfeit_claim(&deployed, &adv_calib, 8, 1337);
    println!(
        "naive delta-only check of the forged claim: {:.1}% — looks perfect!",
        naive_delta_check(&forged, &deployed)
    );
    let verdict = validate_claim(&forged, &deployed, None, &calibration, 90.0);
    println!(
        "full validation (reproduction required): stats_reproducible={}, locations_reproducible={}, accepted={}",
        verdict.stats_reproducible, verdict.locations_reproducible, verdict.accepted
    );
    assert!(!verdict.accepted);

    let owner_claim = OwnershipClaim::from_secrets(&secrets)?;
    let owner_verdict = validate_claim(
        &owner_claim,
        &deployed,
        Some(&mut fp_model),
        &calibration,
        90.0,
    );
    println!(
        "owner's claim under the same protocol: WER {:.1}%, accepted={}",
        owner_verdict.wer_at_reproduced_locations, owner_verdict.accepted
    );
    assert!(owner_verdict.accepted);
    println!("\nthe dispute resolves for the proprietor.");
    Ok(())
}
