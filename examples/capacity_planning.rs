//! Capacity planning: how many signature bits fit before quality
//! degrades, and what watermarking strength (Eq. 8) each density buys —
//! the practical version of the paper's §5.4 capacity analysis.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::eval::report::{evaluate_quality, EvalConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::tensor::stats::log10_binomial_tail;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("strength table (Eq. 8): chance probability of a full match\n");
    println!("{:>12}  {:>16}", "bits/layer", "log10 P_c/layer");
    for bits in [8u64, 20, 40, 100, 300] {
        println!("{:>12}  {:>16.2}", bits, log10_binomial_tail(bits, bits));
    }
    println!(
        "\n(the paper quotes 9.09e-13 for 40 bits — that is 10^{:.2})\n",
        log10_binomial_tail(40, 40)
    );

    println!("training a nano-LM to sweep insertion density…");
    let corpus = Corpus::sample(Grammar::synwiki(31), 12_000, 1_000, 2_000);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut model = TransformerModel::new(cfg);
    train(
        &mut model,
        &corpus,
        &TrainConfig {
            steps: 200,
            batch_size: 8,
            seq_len: 24,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = model.collect_activation_stats(&calibration);
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let eval_cfg = EvalConfig {
        ppl_tokens: 1500,
        task_items: 60,
        ..EvalConfig::default()
    };
    let baseline = evaluate_quality(&quantized, &corpus, &eval_cfg);
    let smallest_layer = quantized.layers.iter().map(|l| l.len()).min().unwrap_or(0);
    println!(
        "baseline (no WM): PPL {:.3}, acc {:.1}% | smallest layer: {} cells\n",
        baseline.ppl, baseline.zero_shot_acc, smallest_layer
    );

    println!(
        "{:>10} {:>10} {:>9} {:>8} {:>7} {:>16}",
        "bits/layer", "density%", "PPL", "ΔPPL", "WER%", "log10 P_c total"
    );
    for bits_per_layer in [2usize, 4, 8, 16, 32] {
        // Keep the pool inside the smallest layer.
        let pool_ratio = (smallest_layer / bits_per_layer).clamp(2, 20);
        let wm_cfg = WatermarkConfig {
            bits_per_layer,
            pool_ratio,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(quantized.clone(), stats.clone(), wm_cfg, 0xCAFE);
        match secrets.watermark_for_deployment() {
            Ok(deployed) => {
                let quality = evaluate_quality(&deployed, &corpus, &eval_cfg);
                let proof = secrets.verify(&deployed)?;
                let total = proof.total_bits as u64;
                println!(
                    "{:>10} {:>9.2}% {:>9.3} {:>+8.3} {:>6.1}% {:>16.1}",
                    bits_per_layer,
                    100.0 * bits_per_layer as f64 / smallest_layer as f64,
                    quality.ppl,
                    quality.ppl - baseline.ppl,
                    proof.wer(),
                    log10_binomial_tail(total, total)
                );
            }
            Err(err) => {
                println!("{bits_per_layer:>10}  insertion refused: {err}");
            }
        }
    }
    println!("\npick the highest density whose ΔPPL you can afford; every row above");
    println!("already has astronomically strong ownership evidence.");
    Ok(())
}
