//! Edge deployment: compare all four quantization schemes on one model,
//! watermark each, and show EmMark is scheme-agnostic (the paper's
//! claim: "EmMark is agnostic to quantization algorithms").
//!
//! ```sh
//! cargo run --release --example edge_deployment
//! ```

use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::eval::report::{evaluate_quality, EvalConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::model::LogitsModel;
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::QuantizedModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training one nano-LM, quantizing with four schemes…\n");
    let corpus = Corpus::sample(Grammar::synwiki(23), 12_000, 1_000, 2_000);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut model = TransformerModel::new(cfg);
    train(
        &mut model,
        &corpus,
        &TrainConfig {
            steps: 200,
            batch_size: 8,
            seq_len: 24,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = model.collect_activation_stats(&calibration);

    let eval_cfg = EvalConfig {
        ppl_tokens: 1500,
        task_items: 60,
        ..EvalConfig::default()
    };
    let fp_quality = evaluate_quality(&model, &corpus, &eval_cfg);
    println!(
        "full precision      : PPL {:>7.3}  acc {:>5.1}%",
        fp_quality.ppl, fp_quality.zero_shot_acc
    );

    let quantized: Vec<QuantizedModel> = vec![
        smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        llm_int8(&model, &stats, OutlierCriterion::default()),
        awq(&model, &stats, &AwqConfig::default()),
        gptq(&mut model, &calibration, &GptqConfig::default()),
    ];

    println!(
        "\n{:<20}  {:>9} {:>7} {:>7}  {:>6}  {:>6}  {:>14}",
        "scheme", "PPL", "ΔPPL", "acc%", "bits", "WER%", "p_chance"
    );
    for qm in quantized {
        let scheme = qm.scheme.clone();
        let bits = qm.layers[0].bits();
        // Per-scheme watermark density, as the paper scales INT8 vs INT4.
        let wm_cfg = if bits == 8 {
            WatermarkConfig {
                bits_per_layer: 12,
                pool_ratio: 20,
                ..Default::default()
            }
        } else {
            WatermarkConfig {
                bits_per_layer: 8,
                pool_ratio: 20,
                ..Default::default()
            }
        };
        let secrets = OwnerSecrets::new(qm, stats.clone(), wm_cfg, 0xE59E);
        let deployed = secrets.watermark_for_deployment()?;
        // Sanity: deployed model still speaks.
        assert!(deployed.logits(&[1, 2, 3]).iter().all(|v| v.is_finite()));
        let quality = evaluate_quality(&deployed, &corpus, &eval_cfg);
        let proof = secrets.verify(&deployed)?;
        println!(
            "{:<20}  {:>9.3} {:>+7.3} {:>6.1}%  {:>6}  {:>5.1}%  10^{:>8.1}",
            scheme,
            quality.ppl,
            quality.ppl - fp_quality.ppl,
            quality.zero_shot_acc,
            bits,
            proof.wer(),
            proof.log10_p_chance()
        );
        assert_eq!(proof.wer(), 100.0, "{scheme}: watermark must extract fully");
    }
    println!("\nEmMark extracted 100% from every scheme — quantizer-agnostic, as claimed.");
    Ok(())
}
