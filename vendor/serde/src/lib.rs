//! API-surface stand-in for `serde`, used because this workspace builds
//! fully offline (no crates.io access). See `vendor/README.md`.
//!
//! The EmMark codebase tags types with `#[derive(Serialize, Deserialize)]`
//! to mark them as wire-format candidates, but every format that actually
//! ships bytes (the deploy artifact, the secrets vault, the fleet
//! registry) is hand-written on `bytes`-style buffers. This crate
//! therefore only has to make the names resolve: the marker traits below
//! plus the no-op derives re-exported from [`serde_derive`].

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
