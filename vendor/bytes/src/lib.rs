//! Offline stand-in for the subset of the `bytes` crate the EmMark
//! codecs use (see `vendor/README.md`). Same method names and semantics,
//! little-endian accessors included; no `Arc`-backed zero-copy slicing —
//! [`Bytes`] here owns its storage and tracks a read cursor.
//!
//! The deploy codec ([`emmark-core::deploy`]), the secrets vault, and the
//! fleet registry are the only consumers; they need length-prefixed
//! little-endian primitives and nothing else.
//!
//! [`emmark-core::deploy`]: ../emmark_core/deploy/index.html

use std::ops::Deref;

/// Read-side cursor trait: the subset of `bytes::Buf` the codecs call.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()` (matching upstream `bytes`).
    fn advance(&mut self, cnt: usize);

    /// Reads one `u8` and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads one `i8` and advances.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32` and advances.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Fills `dst` from the cursor and advances past it.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() > self.remaining()`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `len` bytes out as an owned [`Bytes`] and advances.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.remaining()`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write-side trait: the subset of `bytes::BufMut` the codecs call.
pub trait BufMut {
    /// Appends a raw slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable byte buffer with a read cursor. Dereferences to the
/// *unread* bytes, so slicing and `len()` behave like upstream `bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

/// Growable byte buffer; freeze it into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Empties the buffer, keeping its allocation (upstream `bytes`
    /// semantics) — the reuse primitive of streaming encoders.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_little_endian() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_i8(-3);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(-1.5);
        w.put_f64_le(std::f64::consts::PI);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i8(), -3);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.copy_to_bytes(4).as_ref(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_tracks_the_cursor() {
        let mut b = Bytes::copy_from_slice(b"abcdef");
        assert_eq!(b.len(), 6);
        assert_eq!(&b[..2], b"ab");
        b.advance(4);
        assert_eq!(&b[..], b"ef");
        assert_eq!(b.to_vec(), b"ef");
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advancing_past_the_end_panics() {
        Bytes::copy_from_slice(b"ab").advance(3);
    }
}
