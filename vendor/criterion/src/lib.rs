//! Offline stand-in for the subset of `criterion` the bench suite uses
//! (see `vendor/README.md`): [`Criterion::bench_function`] with a
//! [`Bencher::iter`] closure, wall-clock sampling, and a `[min mean max]`
//! line per benchmark in `criterion`'s familiar layout. No statistical
//! outlier analysis, HTML reports, or baselines — the bench binaries in
//! `crates/bench` print the paper-style tables themselves and only need
//! honest timings here.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark routine; handed to the
/// [`Criterion::bench_function`] closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        }
    }

    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark driver mirroring `criterion::Criterion`'s builder calls.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples [`Bencher::iter`] collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for CLI compatibility; filtering flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.ran += 1;
        report(id, &bencher.samples);
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) complete", self.ran);
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} no samples collected");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut c = Criterion::default().sample_size(3).configure_from_args();
        let mut runs = 0usize;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
        c.final_summary();
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
