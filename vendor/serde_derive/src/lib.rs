//! No-op stand-in for the `serde_derive` proc-macro crate.
//!
//! This workspace builds in a fully offline environment, so the real
//! `serde` cannot be vendored from crates.io. The codebase only *tags*
//! types with `#[derive(Serialize, Deserialize)]` (all wire formats are
//! hand-written in `emmark-core::deploy` / `emmark-core::vault`), so the
//! derives here expand to nothing. They still declare the `serde` helper
//! attribute so field annotations like `#[serde(skip)]` stay legal.
//!
//! Swapping in the real serde is a one-line change in the workspace
//! manifest; no source edits are required.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts (and discards) `#[serde(...)]`
/// helper attributes and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts (and discards) `#[serde(...)]`
/// helper attributes and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
