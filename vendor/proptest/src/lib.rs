//! Offline stand-in for the subset of `proptest` the test suite uses
//! (see `vendor/README.md`): the [`proptest!`] macro over functions with
//! `arg in strategy` bindings, range / `select` / `collection::vec`
//! strategies, `prop_assert*`, and `prop_assume`.
//!
//! Inputs are drawn from a PRNG seeded deterministically from the test's
//! module path and name, so every run exercises the same cases — there
//! is no persistence file and no shrinking. A failing case panics with
//! the generated inputs visible in the assertion message.

/// Strategies: how argument values are drawn.
pub mod strategy {
    use crate::test_runner::Gen;
    use std::ops::Range;

    /// A source of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, gen: &mut Gen) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, gen: &mut Gen) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + (gen.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, gen: &mut Gen) -> f32 {
            self.start + (self.end - self.start) * gen.next_unit_f64() as f32
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, gen: &mut Gen) -> f64 {
            self.start + (self.end - self.start) * gen.next_unit_f64()
        }
    }

    /// Uniform choice from a fixed list; see [`crate::sample::select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(pub(crate) Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, gen: &mut Gen) -> T {
            self.0[(gen.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }

    /// Vectors of strategy-drawn elements; see [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = self.len.sample(gen);
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }
}

/// `proptest::sample` — choosing from explicit lists.
pub mod sample {
    use crate::strategy::Select;

    /// Strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic SplitMix64 generator behind every strategy.
    #[derive(Debug, Clone)]
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// Seeds from an arbitrary label (the test's full path), so each
        /// test sees its own reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: seed }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Rejects the current case (it does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Asserts within a property; failure panics with the condition text.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*); };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*); };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*); };
}

/// Declares property tests: each function body runs `cases` times with
/// arguments freshly drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        // The immediately-invoked closure gives `prop_assume!` an early
        // return without aborting the whole case loop.
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __gen = $crate::test_runner::Gen::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted = 0u32;
            let mut __rejected = 0u32;
            while __accepted < __cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __gen);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err(_) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 10_000,
                            "prop_assume rejected 10000 cases; strategy domain too narrow"
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Draws stay inside their declared ranges.
        #[test]
        fn ranges_are_respected(
            n in 3u64..17,
            x in -2.0f64..2.0,
            pick in prop::sample::select(vec![1u8, 4, 8]),
            v in prop::collection::vec(0u32..5, 1..9),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!([1u8, 4, 8].contains(&pick));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        /// Rejected cases do not count toward the accepted total.
        #[test]
        fn assume_rejects_without_failing(k in 0u32..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
            prop_assert_ne!(k % 2, 1);
        }
    }

    #[test]
    fn generator_is_deterministic_per_label() {
        let mut a = crate::test_runner::Gen::deterministic("x");
        let mut b = crate::test_runner::Gen::deterministic("x");
        let mut c = crate::test_runner::Gen::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
