//! Truncation/corruption coverage for the EMFM shard-manifest codec,
//! mirroring `tests/fleet_bundle_codec.rs` for the EMFB bundle: cutting
//! the manifest at (and around) *every* section boundary must fail
//! cleanly — never panic, never load a damaged fleet — and the shard
//! loader must reject mixed-version layouts, overlapping or gapped
//! device ranges, checksum/length mismatches, and a leak index naming
//! devices the registry does not have.

use emmark::core::deploy::CodecError;
use emmark::core::fleet::registry_entry;
use emmark::core::provision::FleetProvisioner;
use emmark::core::registry::{
    decode_manifest, encode_manifest, load_sharded_registry, manifest_section_boundaries,
    provision_sharded, shard_checksum, ShardedFleet,
};
use emmark::core::store::StoreError;
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use proptest::prelude::*;

fn base_secrets(seed: u64) -> OwnerSecrets {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = awq(&model, &stats, &AwqConfig::default());
    let wm = WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        ..Default::default()
    };
    OwnerSecrets::new(qm, stats, wm, seed ^ 0x5EC2)
}

fn sharded_fleet(seed: u64, devices: usize, shards: usize) -> (Vec<String>, ShardedFleet) {
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 2,
        pool_ratio: 10,
        selection_seed: 0xDE11CE ^ seed,
        ..Default::default()
    };
    let provisioner = FleetProvisioner::new(base_secrets(seed), fp_cfg).expect("cache");
    let ids: Vec<String> = (0..devices).map(|i| format!("edge-{i:02}")).collect();
    let fleet = provision_sharded(&provisioner, &ids, shards, None).expect("provision");
    (ids, fleet)
}

/// Loads a fleet whose shard bytes live in memory.
fn load(
    manifest_bytes: &[u8],
    fleet: &ShardedFleet,
) -> Result<emmark::core::registry::ShardedRegistry, StoreError> {
    load_sharded_registry(manifest_bytes, |name| {
        fleet
            .shards
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.to_vec())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, name.to_string()))
    })
}

// Fixed offsets of the manifest header: magic (4), manifest version
// (4), shard registry version (4), then the 32-byte fingerprint config.
const REGISTRY_VERSION_WORD: usize = 8;
const CONFIG_START: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Encode → decode is the identity, the loaded device list matches
    /// the serially derived registry entries, and the section-boundary
    /// walk spans exactly the encoded bytes.
    #[test]
    fn manifest_round_trips_and_loads(
        seed in 0u64..100_000,
        devices in 1usize..12,
        shards in 1usize..5,
    ) {
        let (ids, fleet) = sharded_fleet(seed, devices, shards);
        let bytes = encode_manifest(&fleet.manifest).to_vec();
        let decoded = decode_manifest(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &fleet.manifest);

        let boundaries = manifest_section_boundaries(&bytes).expect("boundaries");
        prop_assert_eq!(*boundaries.last().unwrap(), bytes.len());
        prop_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));

        let loaded = load(&bytes, &fleet).expect("load");
        prop_assert_eq!(loaded.devices().len(), devices);
        for (id, device) in ids.iter().zip(loaded.devices()) {
            prop_assert_eq!(device, &registry_entry(&fleet.manifest.fingerprint_config, id));
        }
        prop_assert_eq!(loaded.index(), &fleet.manifest.index);
    }

    /// Truncating the manifest at (and just around) every section
    /// boundary is a clean codec error, never a panic or a silently
    /// shortened fleet.
    #[test]
    fn truncation_at_every_section_boundary_errors_cleanly(
        seed in 0u64..100_000,
        devices in 1usize..8,
        shards in 1usize..4,
    ) {
        let (_, fleet) = sharded_fleet(seed, devices, shards);
        let bytes = encode_manifest(&fleet.manifest).to_vec();
        let boundaries = manifest_section_boundaries(&bytes).expect("boundaries");
        let mut cuts: Vec<usize> = boundaries
            .iter()
            .flat_map(|&b| [b.saturating_sub(1), b, b + 1])
            .filter(|&c| c < bytes.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        for cut in cuts {
            let err = decode_manifest(&bytes[..cut]).expect_err("truncated decode");
            prop_assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. }
                        | CodecError::Corrupt { .. }
                        | CodecError::BadMagic
                        | CodecError::BadVersion(_)
                ),
                "cut {cut}: {err:?}"
            );
        }
    }
}

#[test]
fn foreign_versions_are_rejected() {
    let (_, fleet) = sharded_fleet(1, 6, 2);
    let bytes = encode_manifest(&fleet.manifest).to_vec();

    // An unknown manifest version.
    let mut evil = bytes.clone();
    evil[4..8].copy_from_slice(&9u32.to_le_bytes());
    assert_eq!(
        decode_manifest(&evil).expect_err("bad manifest version"),
        CodecError::BadVersion(9)
    );

    // A manifest declaring shards of a registry version this build does
    // not write: a mixed-version layout, not mere corruption.
    let mut evil = bytes.clone();
    evil[REGISTRY_VERSION_WORD..REGISTRY_VERSION_WORD + 4].copy_from_slice(&2u32.to_le_bytes());
    assert_eq!(
        decode_manifest(&evil).expect_err("mixed registry version"),
        CodecError::MixedVersion { outer: 1, inner: 2 }
    );

    // A shard file of a foreign registry version under a consistent
    // manifest (checksum and length re-stamped to collude): still a
    // mixed-version error at load time.
    let mut fleet = fleet;
    let mut shard0 = fleet.shards[0].1.to_vec();
    shard0[4..8].copy_from_slice(&2u32.to_le_bytes());
    fleet.manifest.shards[0].checksum = shard_checksum(&shard0);
    fleet.manifest.shards[0].byte_len = shard0.len() as u64;
    fleet.shards[0].1 = shard0.into();
    let bytes = encode_manifest(&fleet.manifest).to_vec();
    match load(&bytes, &fleet).expect_err("mixed shard version") {
        StoreError::Codec(CodecError::MixedVersion { outer: 1, inner: 2 }) => {}
        other => panic!("expected MixedVersion, got {other:?}"),
    }
}

#[test]
fn overlapping_gapped_and_empty_shard_ranges_are_rejected() {
    let (_, fleet) = sharded_fleet(2, 8, 2);

    // Overlap: shard 1 restarts inside shard 0's range.
    let mut evil = fleet.manifest.clone();
    evil.shards[1].first_device -= 1;
    let err = decode_manifest(&encode_manifest(&evil)).expect_err("overlap");
    assert!(err.to_string().contains("contiguous"), "{err}");

    // Gap: shard 1 skips a device.
    let mut evil = fleet.manifest.clone();
    evil.shards[1].first_device += 1;
    let err = decode_manifest(&encode_manifest(&evil)).expect_err("gap");
    assert!(err.to_string().contains("contiguous"), "{err}");

    // Total mismatch: the shards do not sum to the declared count.
    let mut evil = fleet.manifest.clone();
    evil.total_devices += 1;
    let err = decode_manifest(&encode_manifest(&evil)).expect_err("total");
    assert!(err.to_string().contains("declares"), "{err}");

    // Empty shard (ranges still contiguous and summing correctly).
    let mut evil = fleet.manifest.clone();
    let moved = evil.shards[1].device_count;
    evil.shards[0].device_count += moved;
    evil.shards[1].first_device += moved;
    evil.shards[1].device_count = 0;
    let err = decode_manifest(&encode_manifest(&evil)).expect_err("empty shard");
    assert!(err.to_string().contains("empty"), "{err}");
}

#[test]
fn shard_bytes_must_match_their_manifest_entry() {
    let (_, fleet) = sharded_fleet(3, 6, 2);
    let bytes = encode_manifest(&fleet.manifest).to_vec();

    // A flipped byte in a shard file: checksum mismatch.
    let mut evil = fleet.clone();
    let mut shard1 = evil.shards[1].1.to_vec();
    let last = shard1.len() - 1;
    shard1[last] ^= 0x40;
    evil.shards[1].1 = shard1.into();
    let err = load(&bytes, &evil).expect_err("checksum");
    assert!(err.to_string().contains("checksum"), "{err}");

    // An appended byte: length mismatch (before the checksum is even
    // computed).
    let mut evil = fleet.clone();
    let mut shard0 = evil.shards[0].1.to_vec();
    shard0.push(0);
    evil.shards[0].1 = shard0.into();
    let err = load(&bytes, &evil).expect_err("length");
    assert!(err.to_string().contains("bytes"), "{err}");

    // A shard whose fingerprint config disagrees with the manifest,
    // with checksum and length re-stamped to collude.
    let mut evil = fleet.clone();
    let mut shard0 = evil.shards[0].1.to_vec();
    // pool_ratio word inside the shard's config (magic 4 + version 4 +
    // bits_per_layer u64 ... the config's second u64-ish field); flip a
    // config byte that keeps the config valid but different.
    shard0[8 + 24] ^= 0x01;
    evil.manifest.shards[0].checksum = shard_checksum(&shard0);
    evil.manifest.shards[0].byte_len = shard0.len() as u64;
    evil.shards[0].1 = shard0.into();
    let err = load(&encode_manifest(&evil.manifest), &evil).expect_err("config");
    let msg = err.to_string();
    assert!(
        msg.contains("differs") || msg.contains("config"),
        "unhelpful error: {msg}"
    );

    // A missing shard file is an I/O error, not a panic.
    let err = load_sharded_registry(&bytes, |_| {
        Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
    })
    .expect_err("missing shard");
    assert!(matches!(err, StoreError::Io { .. }));
}

#[test]
fn shard_names_cannot_escape_the_manifest_directory() {
    let (_, fleet) = sharded_fleet(4, 4, 1);
    for evil_name in ["../secrets.emws", "a/b.emfr", "a\\b.emfr", ""] {
        let mut evil = fleet.manifest.clone();
        evil.shards[0].name = evil_name.to_string();
        let err = decode_manifest(&encode_manifest(&evil)).expect_err("path escape");
        assert!(
            err.to_string().contains("escapes") || err.to_string().contains("empty"),
            "{evil_name:?}: {err}"
        );
    }

    // Invalid UTF-8 in a shard name.
    let bytes = encode_manifest(&fleet.manifest).to_vec();
    let boundaries = manifest_section_boundaries(&bytes).expect("boundaries");
    // boundaries: [0, 4, 8, 12, config end, shard-count end, …]; the
    // first shard entry (length-prefixed name) starts at boundaries[5].
    let name_start = boundaries[5] + 4;
    let mut evil = bytes.clone();
    evil[name_start] = 0xFF;
    let err = decode_manifest(&evil).expect_err("bad utf-8");
    assert!(err.to_string().contains("utf-8"), "{err}");
}

#[test]
fn corrupted_leak_index_is_rejected_not_panicking() {
    let (_, fleet) = sharded_fleet(5, 10, 2);
    let bytes = encode_manifest(&fleet.manifest).to_vec();
    let boundaries = manifest_section_boundaries(&bytes).expect("boundaries");
    let shard_count = fleet.manifest.shards.len();
    // boundaries: [0, 4, 8, 12, config end, shard-count end,
    // per-shard ends…, cells start, per-cell marks…].
    let cells_start = boundaries[6 + shard_count];
    let total = fleet.manifest.total_devices as u32;

    // An invalid fingerprint config (pool_ratio = 0).
    let mut evil = bytes.clone();
    evil[CONFIG_START + 20..CONFIG_START + 24].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        decode_manifest(&evil),
        Err(CodecError::Corrupt { .. })
    ));

    // A cell-count word promising more cells than the input holds.
    let mut evil = bytes.clone();
    evil[cells_start - 4..cells_start].copy_from_slice(&(u32::MAX / 2).to_le_bytes());
    assert!(matches!(
        decode_manifest(&evil),
        Err(CodecError::Truncated { .. })
    ));

    // An out-of-order first cell: forcing its layer word sky-high makes
    // the (layer, flat) ordering check fire on the second cell.
    let mut evil = bytes.clone();
    evil[cells_start..cells_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = decode_manifest(&evil).expect_err("unsorted cells");
    assert!(err.to_string().contains("sorted"), "{err}");

    // Walk the cells for a bucket with entries, then (a) point its
    // first device id past the fleet and (b) break its ordering.
    let mut pos = cells_start;
    let mut bucket_with_two = None;
    let mut bucket_with_one = None;
    while pos < bytes.len() {
        pos += 12; // layer + flat
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if len >= 1 && bucket_with_one.is_none() {
                bucket_with_one = Some(pos);
            }
            if len >= 2 && bucket_with_two.is_none() {
                bucket_with_two = Some(pos);
            }
            pos += 4 + 4 * len;
        }
        if bucket_with_two.is_some() {
            break;
        }
    }
    let one = bucket_with_one.expect("some bucket has an entry");
    let mut evil = bytes.clone();
    evil[one + 4..one + 8].copy_from_slice(&total.to_le_bytes());
    let err = decode_manifest(&evil).expect_err("out-of-range device");
    assert!(err.to_string().contains("names device"), "{err}");

    if let Some(two) = bucket_with_two {
        let first = u32::from_le_bytes(bytes[two + 4..two + 8].try_into().unwrap());
        let mut evil = bytes.clone();
        evil[two + 8..two + 12].copy_from_slice(&first.to_le_bytes());
        let err = decode_manifest(&evil).expect_err("unsorted bucket");
        assert!(err.to_string().contains("ascending"), "{err}");
    }
}
