//! Attack-robustness regression matrix (§4.3 / §5.3 of the paper, run
//! as CI surface instead of a one-off experiment): every attack family
//! — overwriting, re-watermarking, pruning, forging, fine-tuning,
//! re-quantization, adaptive location-targeting — against every
//! quantization scheme in `emmark-quant`, through the one
//! `emmark::attacks::harness` API.
//!
//! The paper's headline robustness claims, pinned as assertions:
//!
//! * overwriting and re-watermarking at the paper's attack strengths
//!   leave WER at exactly 100% (Figure 2), and even much stronger
//!   attacks cannot push the Eq. 8 proof below significance;
//! * pruning — the attack the paper argues is impractical on
//!   already-compressed models — cannot erase the ownership signal even
//!   at a quality-destroying fraction;
//! * forged claims pass the naive delta check but fail
//!   reproduction-based validation, while the honest owner's claim is
//!   accepted.
//!
//! Strength scaling (DESIGN.md §4): the paper sweeps 100–500
//! overwritten cells and 100–300 re-watermarked bits per layer on
//! multi-million-cell OPT layers — at most ~0.0125% of cells, i.e. less
//! than one cell of a 256-cell tiny-test layer. The matrix therefore
//! pins WER = 100% at ≤2 overwritten / ≤1 re-watermarked cells per
//! layer, and checks the proof (not the full WER) at several times that
//! strength. Attack seeds are pinned: the attacks are random processes,
//! and at tiny-grid watermark densities (1.6% of cells vs the paper's
//! ~0.002%) an unlucky draw can graze a watermark cell far more often
//! than at paper scale, so the matrix fixes one deterministic adversary
//! per family and regresses against it.

use emmark::attacks::adaptive::{adaptive_attack, AdaptiveConfig};
use emmark::attacks::finetune::{qlora_finetune_attack, FinetuneConfig};
use emmark::attacks::forging::{validate_claim, OwnershipClaim};
use emmark::attacks::harness::{
    adaptive_sweep, finetune_sweep, forging_check, overwrite_sweep, pruning_sweep, requant_matrix,
    rewatermark_sweep, AttackPoint,
};
use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::attacks::pruning::prune_attack;
use emmark::attacks::requant::{roundtrip_same_grid, RequantScheme};
use emmark::attacks::rewatermark::{rewatermark_attack, RewatermarkConfig};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::eval::report::EvalConfig;
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use std::sync::OnceLock;

const OWNERSHIP_THRESHOLD: f64 = -6.0;
/// Fig. 2a strengths, scaled to the tiny grids (see module docs).
const OVERWRITE_STRENGTHS: &[usize] = &[0, 1, 2];
/// The pinned overwriting adversary.
const OVERWRITE_SEED: u64 = 10;
/// A many-times-paper-strength overwrite: damages the model, must not
/// erase the proof.
const OVERWRITE_MARGIN: usize = 16;
/// Fig. 2b strengths, scaled likewise.
const REWATERMARK_STRENGTHS: &[usize] = &[0, 1];
/// Proof-survival strength for re-watermarking.
const REWATERMARK_MARGIN: usize = 8;
/// §5.3 pruning fractions: a quality-destroying quarter of every layer.
const PRUNE_FRACTIONS: &[f64] = &[0.0, 0.25];
/// QLoRA merge sweep: the clean point and a benign adaptation run.
const FINETUNE_STEPS: &[u64] = &[0, 100];
/// WER floor after any head-adapter merge. Structural bound: the merge
/// re-rounds only the head layer, so at most one layer's worth of bits
/// — `1/13` of the signature on the 13-layer tiny model, i.e. WER
/// ≥ 92.3% — is ever at risk. Measured minimum across all five schemes,
/// benign and hot learning rates: 92.3%.
const FINETUNE_WER_FLOOR: f64 = 90.0;
/// Adaptive budget sweep (cells per layer). 40 = the full candidate
/// pool (`pool_ratio × bits_per_layer` for the INT4 configs).
const ADAPTIVE_BUDGETS: &[usize] = &[0, 1, 2, 4, 8, 16, 40];
/// Measured adaptive WER minima across schemes: ≥ 90.4 at k ≤ 2,
/// ≥ 75.0 at k ≤ 8. Floors leave a few points of margin.
const ADAPTIVE_WER_FLOOR_K2: f64 = 88.0;
const ADAPTIVE_WER_FLOOR_K8: f64 = 70.0;

/// The pinned re-watermarking adversary: the paper's parameters
/// (α = 1, β = 1.5, pool ratio 50, quantized-model activations) with a
/// fixed seed.
fn matrix_adversary() -> RewatermarkConfig {
    RewatermarkConfig {
        seed: 163,
        ..Default::default()
    }
}

/// One trained tiny model family, quantized under all five schemes.
struct Family {
    corpus: Corpus,
    fp_model: TransformerModel,
    stats: ActivationStats,
    models: Vec<QuantizedModel>,
}

fn family() -> &'static Family {
    static FAMILY: OnceLock<Family> = OnceLock::new();
    FAMILY.get_or_init(|| {
        let corpus = Corpus::sample(Grammar::synwiki(15), 6000, 400, 800);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut fp_model = TransformerModel::new(cfg);
        train(
            &mut fp_model,
            &corpus,
            &TrainConfig {
                steps: 80,
                batch_size: 6,
                seq_len: 16,
                ..TrainConfig::default()
            },
        );
        let calib = owner_calib(&corpus);
        let stats = fp_model.collect_activation_stats(&calib);
        let models = vec![
            QuantizedModel::quantize_with(&fp_model, "rtn-int8", |_, lin| {
                quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
            }),
            awq(&fp_model, &stats, &AwqConfig::default()),
            gptq(&mut fp_model.clone(), &calib, &GptqConfig::default()),
            smoothquant(&fp_model, &stats, &SmoothQuantConfig::default()),
            llm_int8(&fp_model, &stats, OutlierCriterion::Quantile(0.9)),
        ];
        Family {
            corpus,
            fp_model,
            stats,
            models,
        }
    })
}

fn owner_calib(corpus: &Corpus) -> Vec<Vec<u32>> {
    corpus
        .valid
        .chunks(16)
        .take(6)
        .map(|c| c.to_vec())
        .collect()
}

fn adversary_calib(corpus: &Corpus) -> Vec<Vec<u32>> {
    corpus
        .valid
        .chunks(16)
        .skip(6)
        .take(4)
        .map(|c| c.to_vec())
        .collect()
}

fn secrets_for(qm: &QuantizedModel, stats: &ActivationStats) -> (OwnerSecrets, QuantizedModel) {
    // The paper's per-precision density mapping (DESIGN.md §4): INT8
    // grids carry more signature bits per layer than INT4, scaled to
    // the tiny grids.
    let cfg = WatermarkConfig {
        bits_per_layer: if qm.layers[0].bits() == 8 { 8 } else { 4 },
        pool_ratio: 10,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(qm.clone(), stats.clone(), cfg, 0x5150);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    (secrets, deployed)
}

fn eval_cfg() -> EvalConfig {
    EvalConfig {
        task_items: 8,
        ppl_tokens: 200,
        ..EvalConfig::tiny_test()
    }
}

fn assert_full_wer(scheme: &str, attack: &str, points: &[AttackPoint]) {
    for p in points {
        assert_eq!(
            p.wer, 100.0,
            "{scheme}/{attack} strength {}: WER must stay 100% at paper strengths \
             ({points:?})",
            p.strength
        );
    }
}

#[test]
fn overwrite_matrix_keeps_full_wer_on_every_scheme() {
    let fam = family();
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let points = overwrite_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            OVERWRITE_STRENGTHS,
            OVERWRITE_SEED,
        );
        assert_eq!(points.len(), OVERWRITE_STRENGTHS.len());
        assert_full_wer(&scheme, "overwrite", &points);

        // Margin: far past paper strength, the proof still stands.
        let mut attacked = deployed.clone();
        overwrite_attack(
            &mut attacked,
            &OverwriteConfig {
                per_layer: OVERWRITE_MARGIN,
                seed: OVERWRITE_SEED,
            },
        );
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}/overwrite x{OVERWRITE_MARGIN}: proof lost (p = 10^{}, wer {})",
            report.log10_p_chance(),
            report.wer()
        );
    }
}

#[test]
fn rewatermark_matrix_keeps_full_wer_on_every_scheme() {
    let fam = family();
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let calib = adversary_calib(&fam.corpus);
        let points = rewatermark_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            REWATERMARK_STRENGTHS,
            &calib,
            &matrix_adversary(),
        );
        assert_eq!(points.len(), REWATERMARK_STRENGTHS.len());
        assert_full_wer(&scheme, "rewatermark", &points);

        // Margin: a much denser re-watermark corrupts some bits but
        // cannot push the proof below significance.
        let adv_stats = deployed.collect_activation_stats(&calib);
        let mut attacked = deployed.clone();
        rewatermark_attack(
            &mut attacked,
            &adv_stats,
            &RewatermarkConfig {
                per_layer: REWATERMARK_MARGIN,
                ..matrix_adversary()
            },
        );
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}/rewatermark x{REWATERMARK_MARGIN}: proof lost (p = 10^{}, wer {})",
            report.log10_p_chance(),
            report.wer()
        );
    }
}

#[test]
fn pruning_matrix_cannot_erase_the_ownership_signal() {
    let fam = family();
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let points = pruning_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            PRUNE_FRACTIONS,
        );
        assert_eq!(points[0].strength, 0, "{scheme}");
        assert_eq!(points[1].strength, 25, "{scheme}");
        assert_eq!(points[0].wer, 100.0, "{scheme}: clean point");
        // Quality does not improve under pruning (the §5.3 exclusion
        // argument is about quality collapsing first)…
        assert!(
            points[1].ppl >= points[0].ppl,
            "{scheme}: pruning must not improve quality ({points:?})"
        );
        // …and EmMark's S_q preference for large-|q| cells keeps the
        // Eq. 8 signal overwhelming.
        let mut attacked = deployed.clone();
        prune_attack(&mut attacked, PRUNE_FRACTIONS[1]);
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}: pruning erased the proof (p = 10^{}, wer {})",
            report.log10_p_chance(),
            report.wer()
        );
        assert!(points[1].wer > 50.0, "{scheme}: {points:?}");
    }
}

#[test]
fn forging_matrix_rejects_counterfeits_and_accepts_the_owner() {
    let fam = family();
    let calib = adversary_calib(&fam.corpus);
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let outcome = forging_check(&deployed, &calib, 4, 666, 90.0);
        // The naive Eq. 6 check is fooled by construction…
        assert!(
            outcome.naive_wer > 95.0,
            "{scheme}: naive wer {}",
            outcome.naive_wer
        );
        // …the reproduction-based protocol is not.
        assert!(
            outcome.forgery_rejected(),
            "{scheme}: forged claim accepted ({:?})",
            outcome.verdict
        );
        assert!(!outcome.verdict.stats_reproducible, "{scheme}");

        // The honest owner, filing with the real full-precision model
        // on the agreed calibration data, passes the same protocol.
        let claim = OwnershipClaim::from_secrets(&secrets).expect("claim");
        let verdict = validate_claim(
            &claim,
            &deployed,
            Some(&mut fam.fp_model.clone()),
            &owner_calib(&fam.corpus),
            90.0,
        );
        assert!(verdict.accepted, "{scheme}: owner rejected ({verdict:?})");
        assert_eq!(verdict.wer_at_reproduced_locations, 100.0, "{scheme}");
    }
}

#[test]
fn finetune_matrix_survives_adapter_merges_on_every_scheme() {
    let fam = family();
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let points = finetune_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            &fam.corpus.train,
            FINETUNE_STEPS,
            &FinetuneConfig::default(),
        );
        assert_eq!(points.len(), FINETUNE_STEPS.len());
        // Zero merged steps is the identity — the paper's "QLoRA does
        // not change quantized weights" argument as the sweep's origin.
        assert_eq!(points[0].wer, 100.0, "{scheme}: clean point");
        // The adversary's tuning genuinely adapts the model (otherwise
        // the attack below would be vacuous)…
        assert!(
            points[1].ppl < points[0].ppl,
            "{scheme}: finetune failed to adapt ({points:?})"
        );
        // …yet merging the adapter into the integer grids re-rounds
        // only the head layer, so WER stays above the floor and the
        // proof stands.
        assert!(
            points[1].wer >= FINETUNE_WER_FLOOR,
            "{scheme}/finetune: WER {} under floor ({points:?})",
            points[1].wer
        );

        // Margin: a hot learning rate and 3x the steps moves the head
        // harder, but the non-head layers are structurally frozen.
        let attacked = qlora_finetune_attack(
            &deployed,
            &fam.corpus.train,
            &FinetuneConfig {
                steps: 300,
                lr: 5e-2,
                ..Default::default()
            },
        );
        let n = deployed.layer_count();
        for l in 0..n - 1 {
            assert_eq!(
                deployed.layers[l].q_values(),
                attacked.layers[l].q_values(),
                "{scheme}: layer {l} must be untouched by a head-adapter merge"
            );
        }
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.wer() >= FINETUNE_WER_FLOOR,
            "{scheme}/finetune-hot: WER {} under floor",
            report.wer()
        );
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}/finetune-hot: proof lost (p = 10^{})",
            report.log10_p_chance()
        );
    }
}

#[test]
fn requant_matrix_splits_into_grid_compatible_and_destroying_pairs() {
    let fam = family();
    let calib = adversary_calib(&fam.corpus);
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);

        // Same-grid round trip (dequantize -> re-round on the stored
        // scales) is the exact identity on every scheme.
        let rt = roundtrip_same_grid(&deployed);
        assert!(
            rt.same_weights(&deployed),
            "{scheme}: roundtrip changed grids"
        );
        let rt_report = secrets.verify(&rt).expect("verify");
        assert_eq!(rt_report.wer(), 100.0, "{scheme}: roundtrip WER");

        let source = RequantScheme::ALL
            .iter()
            .copied()
            .find(|s| s.name() == scheme)
            .expect("source scheme");
        let points = requant_matrix(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            &calib,
            &RequantScheme::ALL,
        );
        assert_eq!(points.len(), RequantScheme::ALL.len());
        let point = |t: RequantScheme| points.iter().find(|p| p.target == t.name()).unwrap();

        // Crossing bit widths re-expresses every cell on a new scale
        // grid: the exact-delta watermark is destroyed, and no residual
        // proof survives (measured WER <= 7.7 on every such pair).
        for target in RequantScheme::ALL {
            if target.bits() != source.bits() {
                let p = point(target);
                assert!(
                    p.wer < 50.0,
                    "{scheme} -> {}: cross-precision conversion should destroy \
                     the exact-delta watermark (wer {})",
                    p.target,
                    p.wer
                );
            }
        }

        // Grid-compatible pairs, pinned per source scheme.
        match source {
            // Per-out-channel absmax scales re-derive exactly from the
            // surrogate (the absmax cell quantizes back to +-qmax), so
            // RTN-INT8 -> RTN-INT8 is an exact identity.
            RequantScheme::RtnInt8 => {
                let p = point(RequantScheme::RtnInt8);
                assert!(p.wer >= 99.9, "rtn-int8 self-requant: wer {}", p.wer);
                assert!(p.log10_p <= OWNERSHIP_THRESHOLD, "p = 10^{}", p.log10_p);
            }
            // AWQ and GPTQ re-runs on adversary calibration land on
            // nearly the same grids: the proof survives (measured WER
            // 94.2 for both).
            RequantScheme::AwqInt4 => {
                let p = point(RequantScheme::AwqInt4);
                assert!(p.wer >= 90.0, "awq self-requant: wer {}", p.wer);
                assert!(p.log10_p <= OWNERSHIP_THRESHOLD, "p = 10^{}", p.log10_p);
            }
            RequantScheme::GptqInt4 => {
                let p = point(RequantScheme::GptqInt4);
                assert!(p.wer >= 90.0, "gptq self-requant: wer {}", p.wer);
                assert!(p.log10_p <= OWNERSHIP_THRESHOLD, "p = 10^{}", p.log10_p);
            }
            // SmoothQuant's input scales are calibration max-abs values:
            // the adversary's different calibration split shifts every
            // scale, and even the same-scheme re-run destroys the mark.
            // The honest negative result of the matrix.
            RequantScheme::SmoothquantInt8 => {
                let p = point(RequantScheme::SmoothquantInt8);
                assert!(
                    p.wer < 50.0,
                    "smoothquant self-requant is calibration-sensitive: wer {}",
                    p.wer
                );
            }
            // LLM.int8() minus its outlier rows is per-out-channel
            // absmax INT8 — converting to plain RTN-INT8 preserves the
            // watermark perfectly (the escape pair of the matrix), and
            // the same-scheme re-run keeps the proof despite re-derived
            // outlier rows.
            RequantScheme::LlmInt8 => {
                let p = point(RequantScheme::RtnInt8);
                assert!(p.wer >= 99.0, "llm-int8 -> rtn-int8: wer {}", p.wer);
                assert!(p.log10_p <= OWNERSHIP_THRESHOLD, "p = 10^{}", p.log10_p);
                let p = point(RequantScheme::LlmInt8);
                assert!(p.wer >= 70.0, "llm-int8 self-requant: wer {}", p.wer);
                assert!(p.log10_p <= OWNERSHIP_THRESHOLD, "p = 10^{}", p.log10_p);
            }
            RequantScheme::RtnInt4 => unreachable!("not a deployment scheme"),
        }
    }
}

#[test]
fn adaptive_matrix_decays_monotonically_and_survives_small_budgets() {
    let fam = family();
    let calib = adversary_calib(&fam.corpus);
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let points = adaptive_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            &calib,
            ADAPTIVE_BUDGETS,
            &AdaptiveConfig::default(),
        );
        assert_eq!(points.len(), ADAPTIVE_BUDGETS.len());
        assert_eq!(points[0].wer, 100.0, "{scheme}: clean point");

        // Budgets are nested (same scoring rule, same coin per cell),
        // and a +-1 on a watermark cell always breaks its exact delta —
        // so WER is exactly monotone non-increasing in k.
        for w in points.windows(2) {
            assert!(
                w[1].wer <= w[0].wer,
                "{scheme}/adaptive: WER must not increase with budget ({points:?})"
            );
        }

        // Floors at small budgets: a blind-to-the-seed attacker
        // perturbing a few top-scored cells per layer mostly hits
        // non-watermark pool cells.
        for p in &points {
            if p.strength <= 2 {
                assert!(
                    p.wer >= ADAPTIVE_WER_FLOOR_K2,
                    "{scheme}/adaptive k={}: WER {} under floor",
                    p.strength,
                    p.wer
                );
            }
            if p.strength <= 8 {
                assert!(
                    p.wer >= ADAPTIVE_WER_FLOOR_K8,
                    "{scheme}/adaptive k={}: WER {} under floor",
                    p.strength,
                    p.wer
                );
            }
        }

        // Proof survival at k = 2 — half the INT4 watermark's own
        // per-layer density. (By k = 8 the short 52-bit signatures drop
        // below the 10^-6 bar: WER 75 is only p ~ 10^-3.7. The proof
        // frontier is k <= 2 on these grids; EXPERIMENTS.md records the
        // decay.)
        let adv_stats = deployed.collect_activation_stats(&calib);
        let mut attacked = deployed.clone();
        adaptive_attack(
            &mut attacked,
            &adv_stats,
            &AdaptiveConfig {
                top_k: 2,
                ..Default::default()
            },
        );
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}/adaptive k=2: proof lost (p = 10^{}, wer {})",
            report.log10_p_chance(),
            report.wer()
        );

        // The frontier's honest edge: covering the whole candidate pool
        // (k = 40) strips the mark below proof strength at essentially
        // zero fidelity cost on these grids — EmMark's defense against
        // a scoring-aware adversary is the secrecy of the selection
        // seed, not a fidelity penalty. Recorded in EXPERIMENTS.md.
        let full_pool = points.last().unwrap();
        assert!(
            full_pool.wer <= 60.0,
            "{scheme}/adaptive full pool: expected collapse, wer {}",
            full_pool.wer
        );
        assert!(
            full_pool.ppl <= points[0].ppl * 1.05,
            "{scheme}/adaptive full pool: fidelity should be near-clean \
             ({} vs {})",
            full_pool.ppl,
            points[0].ppl
        );
    }
}
