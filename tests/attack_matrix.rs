//! Attack-robustness regression matrix (§4.3 / §5.3 of the paper, run
//! as CI surface instead of a one-off experiment): every attack family
//! — overwriting, re-watermarking, pruning, forging — against every
//! quantization scheme in `emmark-quant`, through the one
//! `emmark::attacks::harness` API.
//!
//! The paper's headline robustness claims, pinned as assertions:
//!
//! * overwriting and re-watermarking at the paper's attack strengths
//!   leave WER at exactly 100% (Figure 2), and even much stronger
//!   attacks cannot push the Eq. 8 proof below significance;
//! * pruning — the attack the paper argues is impractical on
//!   already-compressed models — cannot erase the ownership signal even
//!   at a quality-destroying fraction;
//! * forged claims pass the naive delta check but fail
//!   reproduction-based validation, while the honest owner's claim is
//!   accepted.
//!
//! Strength scaling (DESIGN.md §4): the paper sweeps 100–500
//! overwritten cells and 100–300 re-watermarked bits per layer on
//! multi-million-cell OPT layers — at most ~0.0125% of cells, i.e. less
//! than one cell of a 256-cell tiny-test layer. The matrix therefore
//! pins WER = 100% at ≤2 overwritten / ≤1 re-watermarked cells per
//! layer, and checks the proof (not the full WER) at several times that
//! strength. Attack seeds are pinned: the attacks are random processes,
//! and at tiny-grid watermark densities (1.6% of cells vs the paper's
//! ~0.002%) an unlucky draw can graze a watermark cell far more often
//! than at paper scale, so the matrix fixes one deterministic adversary
//! per family and regresses against it.

use emmark::attacks::forging::{validate_claim, OwnershipClaim};
use emmark::attacks::harness::{
    forging_check, overwrite_sweep, pruning_sweep, rewatermark_sweep, AttackPoint,
};
use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::attacks::pruning::prune_attack;
use emmark::attacks::rewatermark::{rewatermark_attack, RewatermarkConfig};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::eval::report::EvalConfig;
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use std::sync::OnceLock;

const OWNERSHIP_THRESHOLD: f64 = -6.0;
/// Fig. 2a strengths, scaled to the tiny grids (see module docs).
const OVERWRITE_STRENGTHS: &[usize] = &[0, 1, 2];
/// The pinned overwriting adversary.
const OVERWRITE_SEED: u64 = 10;
/// A many-times-paper-strength overwrite: damages the model, must not
/// erase the proof.
const OVERWRITE_MARGIN: usize = 16;
/// Fig. 2b strengths, scaled likewise.
const REWATERMARK_STRENGTHS: &[usize] = &[0, 1];
/// Proof-survival strength for re-watermarking.
const REWATERMARK_MARGIN: usize = 8;
/// §5.3 pruning fractions: a quality-destroying quarter of every layer.
const PRUNE_FRACTIONS: &[f64] = &[0.0, 0.25];

/// The pinned re-watermarking adversary: the paper's parameters
/// (α = 1, β = 1.5, pool ratio 50, quantized-model activations) with a
/// fixed seed.
fn matrix_adversary() -> RewatermarkConfig {
    RewatermarkConfig {
        seed: 163,
        ..Default::default()
    }
}

/// One trained tiny model family, quantized under all five schemes.
struct Family {
    corpus: Corpus,
    fp_model: TransformerModel,
    stats: ActivationStats,
    models: Vec<QuantizedModel>,
}

fn family() -> &'static Family {
    static FAMILY: OnceLock<Family> = OnceLock::new();
    FAMILY.get_or_init(|| {
        let corpus = Corpus::sample(Grammar::synwiki(15), 6000, 400, 800);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut fp_model = TransformerModel::new(cfg);
        train(
            &mut fp_model,
            &corpus,
            &TrainConfig {
                steps: 80,
                batch_size: 6,
                seq_len: 16,
                ..TrainConfig::default()
            },
        );
        let calib = owner_calib(&corpus);
        let stats = fp_model.collect_activation_stats(&calib);
        let models = vec![
            QuantizedModel::quantize_with(&fp_model, "rtn-int8", |_, lin| {
                quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
            }),
            awq(&fp_model, &stats, &AwqConfig::default()),
            gptq(&mut fp_model.clone(), &calib, &GptqConfig::default()),
            smoothquant(&fp_model, &stats, &SmoothQuantConfig::default()),
            llm_int8(&fp_model, &stats, OutlierCriterion::Quantile(0.9)),
        ];
        Family {
            corpus,
            fp_model,
            stats,
            models,
        }
    })
}

fn owner_calib(corpus: &Corpus) -> Vec<Vec<u32>> {
    corpus
        .valid
        .chunks(16)
        .take(6)
        .map(|c| c.to_vec())
        .collect()
}

fn adversary_calib(corpus: &Corpus) -> Vec<Vec<u32>> {
    corpus
        .valid
        .chunks(16)
        .skip(6)
        .take(4)
        .map(|c| c.to_vec())
        .collect()
}

fn secrets_for(qm: &QuantizedModel, stats: &ActivationStats) -> (OwnerSecrets, QuantizedModel) {
    // The paper's per-precision density mapping (DESIGN.md §4): INT8
    // grids carry more signature bits per layer than INT4, scaled to
    // the tiny grids.
    let cfg = WatermarkConfig {
        bits_per_layer: if qm.layers[0].bits() == 8 { 8 } else { 4 },
        pool_ratio: 10,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(qm.clone(), stats.clone(), cfg, 0x5150);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    (secrets, deployed)
}

fn eval_cfg() -> EvalConfig {
    EvalConfig {
        task_items: 8,
        ppl_tokens: 200,
        ..EvalConfig::tiny_test()
    }
}

fn assert_full_wer(scheme: &str, attack: &str, points: &[AttackPoint]) {
    for p in points {
        assert_eq!(
            p.wer, 100.0,
            "{scheme}/{attack} strength {}: WER must stay 100% at paper strengths \
             ({points:?})",
            p.strength
        );
    }
}

#[test]
fn overwrite_matrix_keeps_full_wer_on_every_scheme() {
    let fam = family();
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let points = overwrite_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            OVERWRITE_STRENGTHS,
            OVERWRITE_SEED,
        );
        assert_eq!(points.len(), OVERWRITE_STRENGTHS.len());
        assert_full_wer(&scheme, "overwrite", &points);

        // Margin: far past paper strength, the proof still stands.
        let mut attacked = deployed.clone();
        overwrite_attack(
            &mut attacked,
            &OverwriteConfig {
                per_layer: OVERWRITE_MARGIN,
                seed: OVERWRITE_SEED,
            },
        );
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}/overwrite x{OVERWRITE_MARGIN}: proof lost (p = 10^{}, wer {})",
            report.log10_p_chance(),
            report.wer()
        );
    }
}

#[test]
fn rewatermark_matrix_keeps_full_wer_on_every_scheme() {
    let fam = family();
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let calib = adversary_calib(&fam.corpus);
        let points = rewatermark_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            REWATERMARK_STRENGTHS,
            &calib,
            &matrix_adversary(),
        );
        assert_eq!(points.len(), REWATERMARK_STRENGTHS.len());
        assert_full_wer(&scheme, "rewatermark", &points);

        // Margin: a much denser re-watermark corrupts some bits but
        // cannot push the proof below significance.
        let adv_stats = deployed.collect_activation_stats(&calib);
        let mut attacked = deployed.clone();
        rewatermark_attack(
            &mut attacked,
            &adv_stats,
            &RewatermarkConfig {
                per_layer: REWATERMARK_MARGIN,
                ..matrix_adversary()
            },
        );
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}/rewatermark x{REWATERMARK_MARGIN}: proof lost (p = 10^{}, wer {})",
            report.log10_p_chance(),
            report.wer()
        );
    }
}

#[test]
fn pruning_matrix_cannot_erase_the_ownership_signal() {
    let fam = family();
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let points = pruning_sweep(
            &secrets,
            &deployed,
            &fam.corpus,
            &eval_cfg(),
            PRUNE_FRACTIONS,
        );
        assert_eq!(points[0].strength, 0, "{scheme}");
        assert_eq!(points[1].strength, 25, "{scheme}");
        assert_eq!(points[0].wer, 100.0, "{scheme}: clean point");
        // Quality does not improve under pruning (the §5.3 exclusion
        // argument is about quality collapsing first)…
        assert!(
            points[1].ppl >= points[0].ppl,
            "{scheme}: pruning must not improve quality ({points:?})"
        );
        // …and EmMark's S_q preference for large-|q| cells keeps the
        // Eq. 8 signal overwhelming.
        let mut attacked = deployed.clone();
        prune_attack(&mut attacked, PRUNE_FRACTIONS[1]);
        let report = secrets.verify(&attacked).expect("verify");
        assert!(
            report.proves_ownership(OWNERSHIP_THRESHOLD),
            "{scheme}: pruning erased the proof (p = 10^{}, wer {})",
            report.log10_p_chance(),
            report.wer()
        );
        assert!(points[1].wer > 50.0, "{scheme}: {points:?}");
    }
}

#[test]
fn forging_matrix_rejects_counterfeits_and_accepts_the_owner() {
    let fam = family();
    let calib = adversary_calib(&fam.corpus);
    for qm in &fam.models {
        let scheme = qm.scheme.clone();
        let (secrets, deployed) = secrets_for(qm, &fam.stats);
        let outcome = forging_check(&deployed, &calib, 4, 666, 90.0);
        // The naive Eq. 6 check is fooled by construction…
        assert!(
            outcome.naive_wer > 95.0,
            "{scheme}: naive wer {}",
            outcome.naive_wer
        );
        // …the reproduction-based protocol is not.
        assert!(
            outcome.forgery_rejected(),
            "{scheme}: forged claim accepted ({:?})",
            outcome.verdict
        );
        assert!(!outcome.verdict.stats_reproducible, "{scheme}");

        // The honest owner, filing with the real full-precision model
        // on the agreed calibration data, passes the same protocol.
        let claim = OwnershipClaim::from_secrets(&secrets).expect("claim");
        let verdict = validate_claim(
            &claim,
            &deployed,
            Some(&mut fam.fp_model.clone()),
            &owner_calib(&fam.corpus),
            90.0,
        );
        assert!(verdict.accepted, "{scheme}: owner rejected ({verdict:?})");
        assert_eq!(verdict.wer_at_reproduced_locations, 100.0, "{scheme}");
    }
}
