//! Property: the same-grid quantization round trip — dequantize every
//! cell and re-round it on its own stored scale — is the *identity* on
//! every scheme, for any model and any watermark configuration. This is
//! the invariant that separates benign storage/serving transformations
//! (which preserve the watermark bit-for-bit) from genuine scheme
//! conversions (which re-derive scale grids and destroy it); the
//! conversion side lives in `tests/attack_matrix.rs`.

use emmark::attacks::requant::{roundtrip_same_grid, RequantScheme};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use proptest::prelude::*;

/// Deterministic synthetic calibration for the stats-driven schemes.
fn calibration(vocab: u32) -> Vec<Vec<u32>> {
    (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s) % vocab).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_grid_roundtrip_preserves_every_watermark(
        scheme in prop::sample::select(RequantScheme::ALL.to_vec()),
        model_seed in 0u64..50,
        bits_per_layer in 2usize..6,
        pool_ratio in 8usize..16,
        selection_seed in 0u64..1_000_000,
        signature_seed in 0u64..1_000_000,
    ) {
        let mut cfg = ModelConfig::tiny_test();
        cfg.init_seed = model_seed;
        let vocab = cfg.vocab_size as u32;
        let mut model = TransformerModel::new(cfg);
        let calib = calibration(vocab);
        let stats = model.collect_activation_stats(&calib);
        let quantized = scheme.quantize(&mut model, &calib);

        let secrets = OwnerSecrets::new(
            quantized,
            stats,
            WatermarkConfig {
                bits_per_layer,
                pool_ratio,
                selection_seed,
                ..Default::default()
            },
            signature_seed,
        );
        let deployed = secrets.watermark_for_deployment().expect("insert");

        let roundtripped = roundtrip_same_grid(&deployed);
        // Bit-exact identity: round((q * s) / s) = q for every cell —
        // two f32 roundings stay far inside the 0.5 rounding margin.
        prop_assert!(roundtripped.same_weights(&deployed), "{}", scheme.name());
        // …and therefore watermark-preserving, with a full-strength
        // proof.
        let report = secrets.verify(&roundtripped).expect("verify");
        prop_assert_eq!(report.wer(), 100.0, "{}", scheme.name());
        prop_assert!(report.proves_ownership(-6.0));
    }
}
