//! PR 2-style truncation/corruption coverage for the EMFB fleet-bundle
//! codec, which PR 3 shipped without it: truncation at (and around)
//! *every* section boundary the bundle layout names must fail cleanly —
//! never panic, never decode a damaged fleet — for both the buffered
//! decoder and the streaming reader, and codec errors must carry the
//! same section + byte-offset context as the deploy codec.

use emmark::core::deploy::CodecError;
use emmark::core::fleet::{decode_registry, encode_registry};
use emmark::core::provision::{FleetProvisioner, ProvisionedDevice};
use emmark::core::store::StoreError;
use emmark::core::vault::{
    bundle_section_boundaries, decode_fleet_bundle, encode_fleet_bundle, FleetBundleStream,
    FleetBundleWriter,
};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use proptest::prelude::*;

fn base_secrets(seed: u64) -> OwnerSecrets {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = awq(&model, &stats, &AwqConfig::default());
    let wm = WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        ..Default::default()
    };
    OwnerSecrets::new(qm, stats, wm, seed ^ 0x5EC2)
}

fn provisioned_fleet(seed: u64, devices: usize) -> (WatermarkConfig, Vec<ProvisionedDevice>) {
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 2,
        pool_ratio: 10,
        selection_seed: 0xDE11CE ^ seed,
        ..Default::default()
    };
    let provisioner = FleetProvisioner::new(base_secrets(seed), fp_cfg).expect("cache");
    let ids: Vec<String> = (0..devices).map(|i| format!("edge-{i:02}")).collect();
    (fp_cfg, provisioner.provision_batch(&ids, None))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Truncating a bundle at (and just around) every section boundary
    /// is a clean codec error for the buffered decoder, and the
    /// streaming reader either errors at the damaged entry or never
    /// reaches it — it must not fabricate devices.
    #[test]
    fn truncation_at_every_section_boundary_errors_cleanly(
        seed in 0u64..100_000,
        devices in 1usize..4,
    ) {
        let (fp_cfg, fleet) = provisioned_fleet(seed, devices);
        let bytes = encode_fleet_bundle(&fp_cfg, &fleet).to_vec();
        let boundaries = bundle_section_boundaries(&bytes).expect("boundaries");
        prop_assert_eq!(*boundaries.last().unwrap(), bytes.len());
        prop_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));

        let mut cuts: Vec<usize> = boundaries
            .iter()
            .flat_map(|&b| [b.saturating_sub(1), b, b + 1])
            .filter(|&c| c < bytes.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        for cut in cuts {
            let err = decode_fleet_bundle(&bytes[..cut]).expect_err("truncated decode");
            prop_assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. }
                        | CodecError::Corrupt { .. }
                        | CodecError::BadMagic
                        | CodecError::BadVersion(_)
                ),
                "cut {cut}: {err:?}"
            );
            // The streaming reader: entries before the cut may decode,
            // but the stream must end in an error (the declared device
            // count can never be satisfied by a truncated bundle).
            match FleetBundleStream::open(&bytes[..cut]) {
                Err(_) => {}
                Ok(stream) => {
                    let entries: Vec<_> = stream.collect();
                    prop_assert!(
                        entries.last().is_some_and(|e| e.is_err()),
                        "cut {cut}: truncated stream ended without an error"
                    );
                    // Fused: nothing after the first error.
                    let first_err = entries.iter().position(|e| e.is_err()).unwrap();
                    prop_assert_eq!(first_err, entries.len() - 1);
                }
            }
        }
    }

    /// The streaming reader and the buffered decoder agree entry for
    /// entry on well-formed bundles.
    #[test]
    fn stream_and_buffered_decoders_agree(
        seed in 0u64..100_000,
        devices in 0usize..4,
    ) {
        let (fp_cfg, fleet) = provisioned_fleet(seed, devices);
        let bytes = encode_fleet_bundle(&fp_cfg, &fleet).to_vec();
        let bundle = decode_fleet_bundle(&bytes).expect("decode");
        let mut stream = FleetBundleStream::open(bytes.as_slice()).expect("open");
        prop_assert_eq!(stream.device_count(), fleet.len());
        prop_assert_eq!(*stream.fingerprint_config(), bundle.fingerprint_config);
        let streamed: Vec<ProvisionedDevice> = (&mut stream)
            .collect::<Result<_, _>>()
            .expect("stream entries");
        prop_assert_eq!(streamed, bundle.devices);
    }
}

#[test]
fn bundle_errors_carry_device_section_and_offset_context() {
    let (fp_cfg, fleet) = provisioned_fleet(1, 3);
    let bytes = encode_fleet_bundle(&fp_cfg, &fleet).to_vec();
    let boundaries = bundle_section_boundaries(&bytes).expect("boundaries");
    // Cut inside the *second* device's artifact: the error must blame
    // device 1 (0-based) and carry a byte offset, like the deploy
    // codec's per-layer errors.
    let second_artifact_end = boundaries[boundaries.len() - 3];
    let err = decode_fleet_bundle(&bytes[..second_artifact_end - 7]).expect_err("truncated");
    let msg = err.to_string();
    assert!(msg.contains("device 1"), "unhelpful error: {msg}");
    assert!(msg.contains("byte"), "no offset in: {msg}");

    // Same context from the streaming reader.
    let mut stream = FleetBundleStream::open(&bytes[..second_artifact_end - 7]).expect("open");
    assert!(stream.next().expect("first entry").is_ok());
    let err = stream.next().expect("second entry").expect_err("truncated");
    assert!(err.to_string().contains("device 1"), "{err}");
}

#[test]
fn registry_errors_carry_device_section_context_too() {
    let (fp_cfg, fleet) = provisioned_fleet(2, 2);
    let devices: Vec<_> = fleet.iter().map(|p| p.fingerprint.clone()).collect();
    let bytes = encode_registry(&fp_cfg, &devices).to_vec();
    // Truncate inside the second device entry.
    let err = decode_registry(&bytes[..bytes.len() - 5]).expect_err("truncated");
    let msg = err.to_string();
    assert!(msg.contains("device 1"), "unhelpful error: {msg}");
    assert!(msg.contains("byte"), "no offset in: {msg}");
}

#[test]
fn corrupted_bundles_are_rejected_not_panicking() {
    let (fp_cfg, fleet) = provisioned_fleet(3, 2);
    let bytes = encode_fleet_bundle(&fp_cfg, &fleet).to_vec();

    // An invalid fingerprint config (pool_ratio = 0 lives at header
    // offset 8 + 8 + 8 + 4 + 4 = the config's pool word).
    let mut evil = bytes.clone();
    evil[8 + 16 + 4..8 + 16 + 8].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        decode_fleet_bundle(&evil),
        Err(CodecError::Corrupt { .. })
    ));

    // A device id containing invalid UTF-8. The first device entry
    // starts right after the header boundaries (0, magic, version,
    // config end, count end).
    let boundaries = bundle_section_boundaries(&bytes).expect("boundaries");
    let first_entry = boundaries[4];
    let mut evil = bytes.clone();
    evil[first_entry + 4] = 0xFF; // first id byte
    let err = decode_fleet_bundle(&evil).expect_err("bad utf-8");
    assert!(err.to_string().contains("utf-8"), "{err}");

    // An artifact length word pointing past the end of the input.
    let mut evil = bytes.clone();
    let id_len = u32::from_le_bytes(bytes[first_entry..first_entry + 4].try_into().unwrap());
    let len_word = first_entry + 4 + id_len as usize + 16;
    evil[len_word..len_word + 4].copy_from_slice(&(u32::MAX / 2).to_le_bytes());
    assert!(matches!(
        decode_fleet_bundle(&evil),
        Err(CodecError::Truncated { .. })
    ));
}

#[test]
fn bundle_writer_enforces_its_declared_count_and_entry_lengths() {
    let (fp_cfg, fleet) = provisioned_fleet(4, 2);

    // Appending more devices than declared is refused.
    let mut w = FleetBundleWriter::new(Vec::new(), &fp_cfg, 1).expect("writer");
    w.append(&fleet[0].fingerprint, &fleet[0].artifact)
        .expect("first");
    assert!(matches!(
        w.append(&fleet[1].fingerprint, &fleet[1].artifact),
        Err(StoreError::Codec(_))
    ));

    // Finishing with fewer devices than declared is refused.
    let w = FleetBundleWriter::new(Vec::new(), &fp_cfg, 2).expect("writer");
    assert!(matches!(w.finish(), Err(StoreError::Codec(_))));

    // A fill callback that lies about the artifact length is refused —
    // a short entry would corrupt every subsequent one.
    let mut w = FleetBundleWriter::new(Vec::new(), &fp_cfg, 1).expect("writer");
    let err = w
        .append_streamed(&fleet[0].fingerprint, fleet[0].artifact.len(), |out| {
            out.write_all(&fleet[0].artifact[..10])
                .map_err(|e| StoreError::Io {
                    what: "test write",
                    source: e,
                })
        })
        .expect_err("short fill");
    assert!(err.to_string().contains("bytes"), "{err}");
}
