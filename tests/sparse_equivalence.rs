//! Sparse-path equivalence suite: for every quantization scheme in
//! `emmark-quant`, watermark extraction through a
//! [`SparseArtifact`](emmark::core::deploy::SparseArtifact) (random
//! byte access into the v2 artifact) must produce the *bit-identical*
//! [`ExtractionReport`] the full-decode path produces — on watermarked,
//! pristine, and attacked suspects — and the fleet engine must return
//! the same verdicts for v1 and v2 encodings of the same model.

use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::core::deploy::{decode_model, encode_model, encode_model_v1, SparseArtifact};
use emmark::core::fingerprint::Fleet;
use emmark::core::fleet::FleetVerifier;
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};

/// One quantized model per scheme shipped in `emmark-quant`, all from
/// the same trained-free tiny transformer and calibration set.
fn all_schemes() -> (Vec<QuantizedModel>, ActivationStats) {
    let mut model = TransformerModel::new(ModelConfig::tiny_test());
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let models = vec![
        QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        }),
        awq(&model, &stats, &AwqConfig::default()),
        gptq(&mut model.clone(), &calib, &GptqConfig::default()),
        smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
    ];
    (models, stats)
}

fn wm_cfg() -> WatermarkConfig {
    WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    }
}

#[test]
fn sparse_and_full_decode_extraction_agree_on_every_scheme() {
    let (models, stats) = all_schemes();
    assert_eq!(models.len(), 5, "all five quant schemes covered");
    for qm in models {
        let scheme = qm.scheme.clone();
        let secrets = OwnerSecrets::new(qm, stats.clone(), wm_cfg(), 0xABCD);
        let deployed = secrets.watermark_for_deployment().expect("insert");

        // Three suspects: the watermarked artifact, the pristine
        // original (0% WER), and an attacked copy (partial WER).
        let mut attacked = deployed.clone();
        overwrite_attack(
            &mut attacked,
            &OverwriteConfig {
                per_layer: 20,
                seed: 7,
            },
        );
        for (label, suspect) in [
            ("deployed", &deployed),
            ("pristine", &secrets.original),
            ("attacked", &attacked),
        ] {
            let bytes = encode_model(suspect);
            let sparse = SparseArtifact::open(&bytes).expect("open");
            let full = decode_model(&bytes).expect("decode");
            let sparse_report = secrets.verify(&sparse).expect("sparse verify");
            let full_report = secrets.verify(&full).expect("full verify");
            assert_eq!(
                sparse_report, full_report,
                "{scheme}/{label}: sparse and full reports diverged"
            );
            let in_memory = secrets.verify(suspect).expect("in-memory verify");
            assert_eq!(
                sparse_report, in_memory,
                "{scheme}/{label}: sparse and in-memory reports diverged"
            );
        }
    }
}

#[test]
fn fleet_verdicts_are_identical_for_v1_and_v2_encodings() {
    let (models, stats) = all_schemes();
    // AWQ INT4 — the paper's main scheme — through the full fleet flow.
    let base = OwnerSecrets::new(models[1].clone(), stats, wm_cfg(), 0xF1EE7);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        selection_seed: 0xDE11CE,
        ..Default::default()
    };
    let mut fleet = Fleet::new(base, fp_cfg);
    let deployments: Vec<QuantizedModel> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|id| fleet.provision(id).expect("provision"))
        .collect();
    let verifier = FleetVerifier::new(&fleet).expect("cache");

    let v2: Vec<Vec<u8>> = deployments
        .iter()
        .map(|m| encode_model(m).to_vec())
        .collect();
    let v1: Vec<Vec<u8>> = deployments
        .iter()
        .map(|m| encode_model_v1(m).to_vec())
        .collect();
    let v2_verdicts = verifier.verify_batch(&v2, -6.0, Some(2));
    let v1_verdicts = verifier.verify_batch(&v1, -6.0, Some(2));
    assert_eq!(v2_verdicts, v1_verdicts, "v1 shim must match sparse path");
    for (i, verdict) in v2_verdicts.iter().enumerate() {
        let v = verdict.as_ref().expect("verdict");
        assert_eq!(v.ownership.wer(), 100.0, "artifact {i}");
        assert!(v.attribution.is_some(), "artifact {i} must be traced");
    }
}

#[test]
fn sparse_open_touches_only_the_header_not_the_grids() {
    // Corrupting grid bytes must not affect open() or the metadata —
    // only the cells actually probed. (This is what makes the fleet
    // batch loop O(watermark bits) per artifact.)
    let (models, stats) = all_schemes();
    let secrets = OwnerSecrets::new(models[0].clone(), stats, wm_cfg(), 0x11);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let bytes = encode_model(&deployed).to_vec();
    let sparse = SparseArtifact::open(&bytes).expect("open");
    let last = *sparse.layer_index().last().expect("layers");
    // Flip a grid byte in the last layer: open still succeeds with the
    // same index, and only reports touching that layer's cells change.
    let mut tampered = bytes.clone();
    tampered[last.q_offset] ^= 0x7F;
    let reopened = SparseArtifact::open(&tampered).expect("open tampered");
    assert_eq!(reopened.layer_index(), sparse.layer_index());
    assert_eq!(reopened.scheme(), sparse.scheme());
    assert_ne!(
        reopened.q_cell(sparse.layer_count() - 1, 0),
        sparse.q_cell(sparse.layer_count() - 1, 0)
    );
}
