//! Property-based equivalence of the provisioning engine: across random
//! watermark/fingerprint configurations, device sets, and bit widths,
//!
//! * [`FleetProvisioner`] artifacts are **byte-identical** to running
//!   the serial `Fleet::provision` + `encode_model` path, and
//! * delta-patched artifacts decode to the same integer grids as full
//!   re-encodes (the patch path can never corrupt a cell the
//!   fingerprint didn't touch).

use emmark::core::deploy::{decode_model, encode_model};
use emmark::core::fingerprint::Fleet;
use emmark::core::provision::FleetProvisioner;
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use proptest::prelude::*;

/// A quantized tiny model (with its activation profile) parameterized
/// by bit width and init seed.
fn quantized_setup(bits: u8, seed: u64) -> (QuantizedModel, ActivationStats) {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = if bits == 4 {
        awq(&model, &stats, &AwqConfig::default())
    } else {
        QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        })
    };
    (qm, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Provisioned artifacts are byte-identical to the serial
    /// insert+encode path, and the registry entries match, for any
    /// config in the valid domain.
    #[test]
    fn provisioned_artifacts_equal_serial_insert_plus_encode(
        bits in prop::sample::select(vec![4u8, 8]),
        model_seed in 0u64..20,
        base_bits in 2usize..5,
        fp_bits in 1usize..4,
        base_selection_seed in 0u64..1_000_000,
        fp_selection_seed in 0u64..1_000_000,
        signature_seed in 0u64..1_000_000,
        n_devices in 1usize..4,
    ) {
        let (qm, stats) = quantized_setup(bits, model_seed);
        let base_cfg = WatermarkConfig {
            bits_per_layer: base_bits,
            pool_ratio: 10,
            selection_seed: base_selection_seed,
            ..Default::default()
        };
        let fp_cfg = WatermarkConfig {
            bits_per_layer: fp_bits,
            pool_ratio: 10,
            selection_seed: fp_selection_seed,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(qm, stats, base_cfg, signature_seed);
        let ids: Vec<String> = (0..n_devices).map(|i| format!("dev-{i}")).collect();

        let provisioner = FleetProvisioner::new(secrets.clone(), fp_cfg).expect("cache");
        let provisioned = provisioner.provision_batch(&ids, Some(2));

        let mut fleet = Fleet::new(secrets, fp_cfg);
        for (id, p) in ids.iter().zip(&provisioned) {
            let serial_model = fleet.provision(id).expect("provision");
            let serial_bytes = encode_model(&serial_model).to_vec();
            // Byte identity of the delta-patched artifact.
            prop_assert_eq!(&p.artifact, &serial_bytes, "device {}", id);
            prop_assert_eq!(
                &p.fingerprint,
                fleet.devices().last().expect("registered"),
                "device {}", id
            );
            // The patched artifact decodes to the same grids as the
            // serially fingerprinted model.
            let decoded = decode_model(&p.artifact).expect("decode");
            prop_assert!(decoded.same_weights(&serial_model), "device {}", id);
        }
    }

    /// Delta patching only moves the fingerprinted cells: every other
    /// cell of a provisioned artifact equals the base-watermarked
    /// model's, and exactly fingerprint-many cells differ by ±1.
    #[test]
    fn delta_patches_touch_exactly_the_fingerprint_cells(
        bits in prop::sample::select(vec![4u8, 8]),
        model_seed in 0u64..20,
        fp_bits in 1usize..4,
        fp_selection_seed in 0u64..1_000_000,
    ) {
        let (qm, stats) = quantized_setup(bits, model_seed);
        let base_cfg = WatermarkConfig {
            bits_per_layer: 3,
            pool_ratio: 10,
            ..Default::default()
        };
        let fp_cfg = WatermarkConfig {
            bits_per_layer: fp_bits,
            pool_ratio: 10,
            selection_seed: fp_selection_seed,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(qm, stats, base_cfg, 0xB17);
        let provisioner = FleetProvisioner::new(secrets, fp_cfg).expect("cache");
        let base = provisioner.base_deployed();
        let device = provisioner.provision_artifact("prop-device");
        let decoded = decode_model(&device.artifact).expect("decode");
        let mut changed = 0usize;
        for (l, layer) in decoded.layers.iter().enumerate() {
            for f in 0..layer.len() {
                let delta = layer.q_at_flat(f) as i16 - base.layers[l].q_at_flat(f) as i16;
                if delta != 0 {
                    prop_assert!(delta.abs() == 1, "layer {} cell {}: delta {}", l, f, delta);
                    changed += 1;
                }
            }
        }
        prop_assert_eq!(changed, fp_cfg.signature_len(base.layer_count()));
    }
}
