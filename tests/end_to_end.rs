//! End-to-end integration: the full paper pipeline on a small trained
//! model — train → calibrate → quantize (all schemes) → watermark →
//! deploy (serialize) → attack → prove ownership.

use emmark::core::deploy::{decode_model, encode_model};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::eval::report::{evaluate_quality, EvalConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::QuantizedModel;

struct Pipeline {
    fp: TransformerModel,
    corpus: Corpus,
    calibration: Vec<Vec<u32>>,
    stats: emmark::nanolm::ActivationStats,
}

fn pipeline() -> Pipeline {
    let corpus = Corpus::sample(Grammar::synwiki(77), 6_000, 600, 900);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    let mut fp = TransformerModel::new(cfg);
    train(
        &mut fp,
        &corpus,
        &TrainConfig {
            steps: 80,
            batch_size: 6,
            seq_len: 16,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(16)
        .take(8)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp.collect_activation_stats(&calibration);
    Pipeline {
        fp,
        corpus,
        calibration,
        stats,
    }
}

fn wm_cfg() -> WatermarkConfig {
    WatermarkConfig {
        bits_per_layer: 6,
        pool_ratio: 12,
        ..Default::default()
    }
}

#[test]
fn every_quantization_scheme_watermarks_deploys_and_verifies() {
    let mut p = pipeline();
    let quantized: Vec<QuantizedModel> = vec![
        smoothquant(&p.fp, &p.stats, &SmoothQuantConfig::default()),
        llm_int8(&p.fp, &p.stats, OutlierCriterion::default()),
        awq(&p.fp, &p.stats, &AwqConfig::default()),
        gptq(&mut p.fp, &p.calibration, &GptqConfig::default()),
    ];
    for original in quantized {
        let scheme = original.scheme.clone();
        let secrets = OwnerSecrets::new(original, p.stats.clone(), wm_cfg(), 0xABCD);
        let deployed = secrets.watermark_for_deployment().expect("insert");
        // Ship over the wire and verify against what came back.
        let bytes = encode_model(&deployed);
        let received = decode_model(&bytes).expect("decode");
        assert!(
            received.same_weights(&deployed),
            "{scheme}: transit corrupted weights"
        );
        let report = secrets.verify(&received).expect("extract");
        assert_eq!(report.wer(), 100.0, "{scheme}: WER");
        assert!(report.proves_ownership(-9.0), "{scheme}: strength");
    }
}

#[test]
fn watermark_preserves_quality_within_noise() {
    let p = pipeline();
    let original = awq(&p.fp, &p.stats, &AwqConfig::default());
    let eval_cfg = EvalConfig {
        ppl_tokens: 600,
        task_items: 30,
        ..EvalConfig::tiny_test()
    };
    let before = evaluate_quality(&original, &p.corpus, &eval_cfg);
    let secrets = OwnerSecrets::new(original, p.stats.clone(), wm_cfg(), 0xBEEF);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let after = evaluate_quality(&deployed, &p.corpus, &eval_cfg);
    // The paper reports zero degradation; at micro scale allow a small
    // relative budget.
    assert!(
        after.ppl <= before.ppl * 1.05,
        "PPL degraded too much: {} -> {}",
        before.ppl,
        after.ppl
    );
    assert!(
        after.zero_shot_acc >= before.zero_shot_acc - 5.0,
        "accuracy degraded too much: {} -> {}",
        before.zero_shot_acc,
        after.zero_shot_acc
    );
}

#[test]
fn ownership_survives_both_removal_attacks() {
    use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
    use emmark::attacks::rewatermark::{rewatermark_attack, RewatermarkConfig};
    let p = pipeline();
    let original = awq(&p.fp, &p.stats, &AwqConfig::default());
    let secrets = OwnerSecrets::new(original, p.stats.clone(), wm_cfg(), 0xCAFE);
    let deployed = secrets.watermark_for_deployment().expect("insert");

    let mut overwritten = deployed.clone();
    overwrite_attack(
        &mut overwritten,
        &OverwriteConfig {
            per_layer: 12,
            seed: 3,
        },
    );
    let r1 = secrets.verify(&overwritten).expect("extract");
    assert!(r1.wer() > 80.0, "overwrite WER {}", r1.wer());
    assert!(r1.proves_ownership(-9.0));

    let adv_calib: Vec<Vec<u32>> = p
        .corpus
        .test
        .chunks(16)
        .take(6)
        .map(|c| c.to_vec())
        .collect();
    let adv_stats = deployed.collect_activation_stats(&adv_calib);
    let mut rewatermarked = deployed.clone();
    rewatermark_attack(
        &mut rewatermarked,
        &adv_stats,
        &RewatermarkConfig {
            per_layer: 10,
            ..Default::default()
        },
    );
    let r2 = secrets.verify(&rewatermarked).expect("extract");
    assert!(r2.wer() > 60.0, "rewatermark WER {}", r2.wer());
    assert!(r2.proves_ownership(-6.0));
}

#[test]
fn integrity_controls_extract_nothing() {
    use emmark::nanolm::train::finetune;
    let mut p = pipeline();
    let original = awq(&p.fp, &p.stats, &AwqConfig::default());
    let secrets = OwnerSecrets::new(original.clone(), p.stats.clone(), wm_cfg(), 0xD00D);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    assert_eq!(secrets.verify(&deployed).expect("wm").wer(), 100.0);

    // non-WM 1: pristine quantized model.
    let r = secrets.verify(&original).expect("non-wm1");
    assert_eq!(r.matched_bits, 0);

    // non-WM 2: fine-tuned on SynAlpaca, then AWQ.
    let alpaca = Grammar::synalpaca(5).generate(3_000);
    let mut ft = p.fp.clone();
    finetune(
        &mut ft,
        &alpaca,
        &TrainConfig {
            steps: 40,
            batch_size: 6,
            seq_len: 16,
            ..TrainConfig::default()
        },
        1_000,
    );
    let ft_stats = ft.collect_activation_stats(&p.calibration);
    let non_wm2 = awq(&ft, &ft_stats, &AwqConfig::default());
    let r = secrets.verify(&non_wm2).expect("non-wm2");
    // Requantized drifted weights can match a few bits by coincidence
    // (Δ of exactly ±1); what matters is that the claim has no
    // statistical strength.
    assert!(r.wer() < 45.0, "fine-tuned model WER {}", r.wer());
    assert!(!r.proves_ownership(-9.0));

    // non-WM 4: GPTQ of the same model.
    let non_wm4 = gptq(&mut p.fp, &p.calibration, &GptqConfig::default());
    let r = secrets.verify(&non_wm4).expect("non-wm4");
    assert!(r.wer() < 45.0, "GPTQ model WER {}", r.wer());
    assert!(!r.proves_ownership(-9.0));
}
