//! Edge-case integration tests for the watermarking core: stacked
//! watermarks, extreme configurations, and adversarial parameter
//! boundaries that unit tests don't reach.

use emmark::core::watermark::{
    extract_watermark, insert_watermark, OwnerSecrets, WatermarkConfig, WatermarkError,
};
use emmark::core::Signature;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::{ActQuant, Granularity, QuantizedModel};

fn setup() -> (QuantizedModel, emmark::nanolm::ActivationStats) {
    let mut model = TransformerModel::new(ModelConfig::tiny_test());
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = awq(&model, &stats, &AwqConfig::default());
    (qm, stats)
}

#[test]
fn two_stacked_watermarks_with_distinct_seeds_mostly_coexist() {
    let (original, stats) = setup();
    let cfg_a = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        selection_seed: 100,
        ..Default::default()
    };
    let cfg_b = WatermarkConfig {
        selection_seed: 999,
        ..cfg_a
    };
    let sig_a = Signature::generate(cfg_a.signature_len(original.layer_count()), 1);
    let sig_b = Signature::generate(cfg_b.signature_len(original.layer_count()), 2);

    let mut doubly = original.clone();
    insert_watermark(&mut doubly, &stats, &sig_a, &cfg_a).expect("first insert");
    // The second insertion sees a model that differs from the original
    // by the first watermark. It derives locations from the *current*
    // model — exactly what a second party (or the fingerprint layer)
    // would do.
    insert_watermark(&mut doubly, &stats, &sig_b, &cfg_b).expect("second insert");

    // The first watermark extracts against the true original; a few
    // bits may be disturbed where the second insertion landed on them.
    let a = extract_watermark(&doubly, &original, &stats, &sig_a, &cfg_a).expect("extract A");
    assert!(a.wer() >= 85.0, "first watermark too damaged: {}", a.wer());
    assert!(a.proves_ownership(-9.0));
}

#[test]
fn minimum_viable_configuration_works() {
    let (original, stats) = setup();
    // 1 bit per layer, pool of 1: fully deterministic selection.
    let cfg = WatermarkConfig {
        bits_per_layer: 1,
        pool_ratio: 1,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original, stats, cfg, 7);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let report = secrets.verify(&deployed).expect("extract");
    assert_eq!(report.wer(), 100.0);
    // 13 quantized layers -> 13 bits -> p = 2^-13, weak but nonzero.
    assert!(report.log10_p_chance() < -3.5);
}

#[test]
fn int8_per_tensor_grids_also_carry_watermarks() {
    // The coarsest possible grid (single scale for the whole tensor).
    let model = TransformerModel::new(ModelConfig::tiny_test());
    let mut model = model;
    let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
    let stats = model.collect_activation_stats(&calib);
    let original = QuantizedModel::quantize_with(&model, "rtn-pt", |_, lin| {
        quantize_linear_rtn(lin, 8, Granularity::PerTensor, ActQuant::None)
    });
    let cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original, stats, cfg, 8);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    assert_eq!(secrets.verify(&deployed).expect("extract").wer(), 100.0);
}

#[test]
fn invalid_configurations_are_rejected_up_front() {
    let (mut original, stats) = setup();
    let sig = Signature::generate(13, 1);
    for bad in [
        WatermarkConfig {
            alpha: -1.0,
            ..Default::default()
        },
        WatermarkConfig {
            alpha: 0.0,
            beta: 0.0,
            ..Default::default()
        },
        WatermarkConfig {
            bits_per_layer: 0,
            ..Default::default()
        },
        WatermarkConfig {
            pool_ratio: 0,
            ..Default::default()
        },
    ] {
        let err = insert_watermark(&mut original, &stats, &sig, &bad).expect_err("must reject");
        assert!(
            matches!(
                err,
                WatermarkError::InvalidConfig(_) | WatermarkError::SignatureLength { .. }
            ),
            "unexpected error for {bad:?}: {err}"
        );
    }
}

#[test]
fn extraction_is_symmetric_under_signature_negation() {
    // Negating every bit of the signature should match exactly zero
    // positions of a properly watermarked model (deltas are all the
    // original bits).
    let (original, stats) = setup();
    let cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original.clone(), stats.clone(), cfg, 9);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let negated = Signature::from_bits(secrets.signature.bits().iter().map(|&b| -b).collect());
    let report = extract_watermark(&deployed, &original, &stats, &negated, &cfg).expect("extract");
    assert_eq!(
        report.matched_bits, 0,
        "negated signature must match nothing"
    );
}

#[test]
fn verification_against_truncated_architecture_fails_cleanly() {
    let (original, stats) = setup();
    let cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original, stats, cfg, 10);

    let mut tiny_cfg = ModelConfig::tiny_test();
    tiny_cfg.d_model = 8;
    tiny_cfg.d_ff = 16;
    tiny_cfg.n_heads = 2;
    let other = TransformerModel::new(tiny_cfg);
    let other_q = QuantizedModel::quantize_with(&other, "rtn", |_, lin| {
        quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
    });
    let err = secrets.verify(&other_q).expect_err("shape mismatch");
    assert!(matches!(err, WatermarkError::ShapeMismatch(_)));
}
