//! The `emmarkd` service answers bit-for-bit identically to the
//! one-shot CLI paths, under concurrency, for **all five quantization
//! schemes** (RTN, AWQ, GPTQ, SmoothQuant, LLM.int8()):
//!
//! * `verify` through the warm family cache vs `decode_secrets` +
//!   `OwnerSecrets::verify` per request;
//! * `provision` vs a fresh `FleetProvisioner`;
//! * `identify-leak` vs a fresh `FleetVerifier` linear scan;
//! * plus the failure envelope: queue-full backpressure, malformed
//!   frames, and the graceful shutdown drain.

use emmark::core::deploy::encode_model;
use emmark::core::fleet::{encode_registry, FleetVerifier};
use emmark::core::provision::FleetProvisioner;
use emmark::core::service::{
    decode_response, encode_request, Blob, ReportSummary, Request, Response, Service, ServiceConfig,
};
use emmark::core::vault::encode_secrets;
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::core::SparseArtifact;
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use std::sync::mpsc;

const SCHEMES: [&str; 5] = ["rtn", "awq", "gptq", "smoothquant", "llm_int8"];

/// Builds one of the five quantized models plus its activation profile.
fn quantize(scheme: &str, seed: u64) -> (QuantizedModel, ActivationStats) {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = match scheme {
        "rtn" => QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        }),
        "awq" => awq(&model, &stats, &AwqConfig::default()),
        "gptq" => gptq(&mut model.clone(), &calib, &GptqConfig::default()),
        "smoothquant" => smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        "llm_int8" => llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
        other => panic!("unknown scheme {other}"),
    };
    (qm, stats)
}

fn wm_cfg() -> WatermarkConfig {
    WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        ..Default::default()
    }
}

fn fp_cfg() -> WatermarkConfig {
    WatermarkConfig {
        bits_per_layer: 2,
        pool_ratio: 10,
        selection_seed: 0xDE11CE,
        ..Default::default()
    }
}

/// One model family: the serialized owner vault, its deployed artifact,
/// and the report the one-shot CLI path produces for that artifact.
struct Family {
    scheme: &'static str,
    secrets_bytes: Vec<u8>,
    deployed_bytes: Vec<u8>,
    expected: ReportSummary,
}

fn build_family(scheme: &'static str, seed: u64) -> Family {
    let (qm, stats) = quantize(scheme, seed);
    let secrets = OwnerSecrets::new(qm, stats, wm_cfg(), 0xB10C ^ seed);
    let deployed = secrets.watermark_for_deployment().expect("stamp");
    let deployed_bytes = encode_model(&deployed).to_vec();
    // The one-shot reference, exactly as `emmark verify` computes it:
    // decode the vault, open the artifact sparsely, extract.
    let sparse = SparseArtifact::open(&deployed_bytes).expect("open");
    let expected = ReportSummary::from(&secrets.verify(&sparse).expect("verify"));
    Family {
        scheme,
        secrets_bytes: encode_secrets(&secrets).to_vec(),
        deployed_bytes,
        expected,
    }
}

#[test]
fn concurrent_batched_verification_matches_the_one_shot_cli() {
    let families: Vec<Family> = SCHEMES
        .iter()
        .enumerate()
        .map(|(i, s)| build_family(s, 1000 + i as u64))
        .collect();

    // Fewer cache slots than families: the LRU must evict and reload
    // under concurrent load without ever changing an answer.
    let service = Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 3,
        max_resident_bytes: None,
        retry_after_ms: 10,
    });

    std::thread::scope(|scope| {
        for (i, family) in families.iter().enumerate() {
            let service = &service;
            scope.spawn(move || {
                // Two rounds per family: a cold miss, then (possibly)
                // a warm hit. Both must equal the one-shot report.
                for round in 0..2u64 {
                    let req = Request::Verify {
                        secrets: Blob::Inline(family.secrets_bytes.clone()),
                        suspect: Blob::Inline(family.deployed_bytes.clone()),
                        log10_threshold: -9.0,
                    };
                    match service.request(i as u64 * 10 + round, &req) {
                        Response::Verify { report, proved } => {
                            assert_eq!(
                                report, family.expected,
                                "{} round {round}: service report diverged from one-shot",
                                family.scheme
                            );
                            assert!(proved, "{}: tiny-model stamp must prove", family.scheme);
                        }
                        other => panic!("{}: unexpected response {other:?}", family.scheme),
                    }
                }
            });
        }
    });

    assert_eq!(service.request(99, &Request::Ping), Response::Pong);
}

#[test]
fn provisioning_and_leak_identification_match_the_one_shot_engines() {
    let family = build_family("awq", 77);
    let secrets = emmark::core::vault::decode_secrets(&family.secrets_bytes).expect("decode");

    // One-shot reference: a fresh provisioner and a fresh verifier.
    let provisioner = FleetProvisioner::new(secrets.clone(), fp_cfg()).expect("cache");
    let ids: Vec<String> = (0..3).map(|i| format!("edge-{i:02}")).collect();
    let expected: Vec<_> = ids
        .iter()
        .map(|id| provisioner.provision_artifact(id))
        .collect();
    let fingerprints: Vec<_> = expected.iter().map(|p| p.fingerprint.clone()).collect();
    let registry_bytes = encode_registry(&fp_cfg(), &fingerprints).to_vec();
    let leak = &expected[1];
    let one_shot = FleetVerifier::from_parts(secrets, fp_cfg(), fingerprints.clone())
        .expect("cache")
        .identify_leak(&SparseArtifact::open(&leak.artifact).expect("open"), -6.0)
        .expect("identify")
        .map(|(d, r)| (d.clone(), ReportSummary::from(&r)));

    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });

    // Provisioning through the warm cache is bit-identical, and the
    // same family entry serves every request.
    for (i, id) in ids.iter().enumerate() {
        let req = Request::Provision {
            secrets: Blob::Inline(family.secrets_bytes.clone()),
            fingerprint_config: fp_cfg(),
            device_id: id.clone(),
        };
        match service.request(i as u64, &req) {
            Response::Provision {
                fingerprint,
                artifact,
            } => {
                assert_eq!(fingerprint, expected[i].fingerprint, "{id}: fingerprint");
                assert_eq!(artifact, expected[i].artifact, "{id}: artifact bytes");
            }
            other => panic!("{id}: unexpected response {other:?}"),
        }
    }

    // Leak identification (linear and indexed-capable registry blob)
    // traces the same device with the same extraction stats.
    for linear in [false, true] {
        let req = Request::IdentifyLeak {
            secrets: Blob::Inline(family.secrets_bytes.clone()),
            registry: Blob::Inline(registry_bytes.clone()),
            suspect: Blob::Inline(leak.artifact.clone()),
            log10_threshold: -6.0,
            linear,
        };
        match service.request(10 + linear as u64, &req) {
            Response::Identify { matched } => {
                assert_eq!(matched, one_shot, "linear={linear}: attribution diverged");
                let (device, _) = matched.expect("the leaked artifact must trace");
                assert_eq!(device.device_id, "edge-01");
            }
            other => panic!("linear={linear}: unexpected response {other:?}"),
        }
    }
}

#[test]
fn rewriting_a_vault_path_invalidates_the_stamp_cache() {
    // Warm path-blob requests skip re-reading the vault while its
    // (mtime, length) stamp is unchanged; overwriting the file must
    // flip the stamp and serve the NEW family, not the cached one.
    let a = build_family("rtn", 501);
    let b = build_family("awq", 502);
    let dir = std::env::temp_dir();
    let vault_path = dir.join(format!("emmark-svctest-{}.emws", std::process::id()));
    let vault = vault_path.display().to_string();

    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    for (round, fam) in [&a, &b].into_iter().enumerate() {
        std::fs::write(&vault_path, &fam.secrets_bytes).expect("write vault");
        let req = Request::Verify {
            secrets: Blob::Path(vault.clone()),
            suspect: Blob::Inline(fam.deployed_bytes.clone()),
            log10_threshold: -9.0,
        };
        // Twice per round: the second request exercises the stamp hit.
        for attempt in 0..2 {
            match service.request(round as u64 * 2 + attempt, &req) {
                Response::Verify { report, .. } => assert_eq!(
                    report, fam.expected,
                    "round {round} attempt {attempt}: wrong family served"
                ),
                other => panic!("round {round}: unexpected response {other:?}"),
            }
        }
    }
    let _ = std::fs::remove_file(&vault_path);
}

#[test]
fn full_queues_push_back_with_busy_and_recover() {
    // No workers: submissions stay queued, so the second one overflows
    // a capacity-1 queue deterministically.
    let service = Service::start(ServiceConfig {
        workers: 0,
        queue_capacity: 1,
        cache_capacity: 1,
        max_resident_bytes: None,
        retry_after_ms: 42,
    });
    let (tx, rx) = mpsc::channel();
    for id in 0..2u64 {
        let tx = tx.clone();
        service.submit(
            encode_request(id, &Request::Ping),
            Box::new(move |bytes| tx.send(decode_response(&bytes).expect("decode")).unwrap()),
        );
    }
    // The overflow answer arrives immediately, without a worker.
    let (id, resp) = rx.recv().expect("busy reply");
    assert_eq!(id, 1);
    assert_eq!(resp, Response::Busy { retry_after_ms: 42 });
    // Draining inline answers the queued request: the queue recovered.
    service.drain_pending();
    let (id, resp) = rx.recv().expect("queued reply");
    assert_eq!(id, 0);
    assert_eq!(resp, Response::Pong);
}

#[test]
fn malformed_frames_are_rejected_without_poisoning_the_pool() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    for garbage in [
        b"not a frame payload".to_vec(),
        b"EMSR".to_vec(), // response magic where a request belongs
        vec![0u8; 4],
    ] {
        let tx = tx.clone();
        service.submit(
            garbage,
            Box::new(move |bytes| tx.send(decode_response(&bytes).expect("decode")).unwrap()),
        );
    }
    for _ in 0..3 {
        let (_, resp) = rx.recv().expect("error reply");
        assert!(
            matches!(resp, Response::Error { .. }),
            "garbage must produce an error response, got {resp:?}"
        );
    }
    // The pool survives and keeps answering well-formed requests.
    assert_eq!(service.request(7, &Request::Ping), Response::Pong);
}

#[test]
fn shutdown_drains_queued_requests_then_refuses_new_ones() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 1,
        max_resident_bytes: None,
        retry_after_ms: 10,
    });
    let (tx, rx) = mpsc::channel();
    for id in 0..4u64 {
        let tx = tx.clone();
        service.submit(
            encode_request(id, &Request::Ping),
            Box::new(move |bytes| tx.send(decode_response(&bytes).expect("decode")).unwrap()),
        );
    }
    assert_eq!(
        service.request(100, &Request::Shutdown),
        Response::ShutdownComplete
    );
    // Every request enqueued before the shutdown was answered.
    let mut ids: Vec<u64> = (0..4)
        .map(|_| rx.recv().expect("drained reply").0)
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3]);
    service.wait_stopped();
    assert!(service.is_stopped());
    assert!(matches!(
        service.request(101, &Request::Ping),
        Response::Error { .. }
    ));
}
