//! Property tests for the numeric substrate: algebra laws the entire
//! stack silently relies on.

use emmark::tensor::rng::Xoshiro256;
use emmark::tensor::Matrix;
use proptest::prelude::*;

/// Strategy: a random matrix with bounded entries.
fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform_range(-3.0, 3.0))
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.iter().zip(b.iter()) {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (AB)C == A(BC) within float tolerance.
    #[test]
    fn matmul_is_associative(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, p in 1usize..8, seed in 0u64..1000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 1);
        let c = matrix(n, p, seed ^ 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-4);
    }

    /// A(B + C) == AB + AC.
    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 3);
        let c = matrix(k, n, seed ^ 4);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert_close(&left, &right, 1e-4);
    }

    /// (AB)^T == B^T A^T, and the fused kernels agree with the naive
    /// compositions.
    #[test]
    fn transpose_product_law_and_fused_kernels(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 5);
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        assert_close(&ab_t, &bt_at, 1e-4);

        // Fused: A * B^T and A^T * B.
        let c = matrix(m, k, seed ^ 6);
        let fused = a.matmul_transb(&c); // [m, m]
        let naive = a.matmul(&c.transpose());
        assert_close(&fused, &naive, 1e-4);

        let d = matrix(m, n, seed ^ 7);
        let fused2 = a.transa_matmul(&d); // [k, n]
        let naive2 = a.transpose().matmul(&d);
        assert_close(&fused2, &naive2, 1e-4);
    }

    /// Row slicing and stacking are inverse operations.
    #[test]
    fn slice_stack_roundtrip(rows in 2usize..10, cols in 1usize..6, cut in 1usize..9, seed in 0u64..1000) {
        prop_assume!(cut < rows);
        let m = matrix(rows, cols, seed);
        let rebuilt = m.slice_rows(0, cut).vstack(&m.slice_rows(cut, rows));
        prop_assert_eq!(rebuilt, m);
    }

    /// Column statistics agree with brute force.
    #[test]
    fn column_stats_match_bruteforce(rows in 1usize..10, cols in 1usize..6, seed in 0u64..1000) {
        let m = matrix(rows, cols, seed);
        let maxes = m.col_abs_max();
        let means = m.col_abs_mean();
        for j in 0..cols {
            let col = m.col(j);
            let bf_max = col.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
            let bf_mean: f32 = col.iter().map(|v| v.abs()).sum::<f32>() / rows as f32;
            prop_assert!((maxes[j] - bf_max).abs() < 1e-6);
            prop_assert!((means[j] - bf_mean).abs() < 1e-5);
        }
    }
}
