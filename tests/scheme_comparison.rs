//! Cross-scheme integration: the Table 1 mechanism checks that don't
//! need the full nine-model grid — RandomWM's INT4 wrap damage, EmMark's
//! clip-free insertion, and the scheme trait harness.

use emmark::core::baselines::{randomwm_insert, RandomWmConfig};
use emmark::core::scheme::{EmMarkScheme, RandomWmScheme, SpecMarkScheme, WatermarkScheme};
use emmark::core::signature::Signature;
use emmark::core::watermark::WatermarkConfig;
use emmark::nanolm::model::LogitsModel;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::QuantizedModel;

fn setup() -> (
    TransformerModel,
    QuantizedModel,
    emmark::nanolm::ActivationStats,
) {
    let mut cfg = ModelConfig::tiny_test();
    cfg.d_model = 24;
    cfg.d_ff = 64;
    cfg.n_heads = 4;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..6u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 5) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = awq(&model, &stats, &AwqConfig::default());
    (model, qm, stats)
}

#[test]
fn emmark_never_wraps_but_randomwm_sometimes_does() {
    let (_, original, stats) = setup();
    let n = original.layer_count();

    // EmMark: all deltas are exactly ±1.
    let em = EmMarkScheme {
        config: WatermarkConfig {
            bits_per_layer: 8,
            pool_ratio: 10,
            ..Default::default()
        },
        signature_seed: 1,
    };
    let mut em_model = original.clone();
    em.insert(&mut em_model, &stats).expect("emmark insert");
    for (a, b) in em_model.layers.iter().zip(&original.layers) {
        for f in 0..a.len() {
            let d = (a.q_at_flat(f) as i16 - b.q_at_flat(f) as i16).abs();
            assert!(d <= 1, "EmMark produced delta {d}");
        }
    }

    // RandomWM with enough bits on an INT4 grid hits clamped cells and
    // wraps (|delta| = 15) — the Table 1 INT4 damage mechanism.
    let cfg = RandomWmConfig {
        bits_per_layer: 64,
        seed: 5,
    };
    let sig = Signature::generate(cfg.bits_per_layer * n, 6);
    let mut rw_model = original.clone();
    randomwm_insert(&mut rw_model, &sig, &cfg);
    let mut wraps = 0;
    for (a, b) in rw_model.layers.iter().zip(&original.layers) {
        for f in 0..a.len() {
            if (a.q_at_flat(f) as i16 - b.q_at_flat(f) as i16).abs() > 1 {
                wraps += 1;
            }
        }
    }
    assert!(wraps > 0, "expected RandomWM wraps on an INT4 grid");
}

#[test]
fn randomwm_damages_int4_logits_more_than_emmark() {
    let (_, original, stats) = setup();
    let tokens: Vec<u32> = (0..24u32).map(|i| (i * 3 + 1) % 31).collect();
    let baseline = original.logits(&tokens);
    let bits = 16usize;

    let em = EmMarkScheme {
        config: WatermarkConfig {
            bits_per_layer: bits,
            pool_ratio: 10,
            ..Default::default()
        },
        signature_seed: 2,
    };
    let mut em_model = original.clone();
    em.insert(&mut em_model, &stats).expect("insert");
    let em_err = baseline.sub(&em_model.logits(&tokens)).frobenius_norm();

    // Average RandomWM damage over several seeds (wrap events are rare
    // but catastrophic; the mean is the fair comparison).
    let mut rw_errs = Vec::new();
    for seed in 0..5 {
        let rw = RandomWmScheme {
            config: RandomWmConfig {
                bits_per_layer: bits,
                seed,
            },
            signature_seed: 2,
        };
        let mut rw_model = original.clone();
        rw.insert(&mut rw_model, &stats).expect("insert");
        rw_errs.push(baseline.sub(&rw_model.logits(&tokens)).frobenius_norm());
    }
    let rw_mean = rw_errs.iter().sum::<f64>() / rw_errs.len() as f64;
    assert!(
        em_err < rw_mean,
        "EmMark damage {em_err} should undercut RandomWM mean damage {rw_mean} ({rw_errs:?})"
    );
}

#[test]
fn harness_sweep_matches_paper_wer_pattern() {
    let (_, original, stats) = setup();
    let schemes: Vec<Box<dyn WatermarkScheme>> = vec![
        Box::new(SpecMarkScheme {
            config: Default::default(),
            signature_seed: 3,
        }),
        Box::new(RandomWmScheme {
            config: Default::default(),
            signature_seed: 3,
        }),
        Box::new(EmMarkScheme {
            config: WatermarkConfig {
                bits_per_layer: 8,
                pool_ratio: 10,
                ..Default::default()
            },
            signature_seed: 3,
        }),
    ];
    let mut results = Vec::new();
    for scheme in &schemes {
        let mut deployed = original.clone();
        scheme.insert(&mut deployed, &stats).expect("insert");
        let wer = scheme
            .extract(&deployed, &original, &stats)
            .expect("extract")
            .wer();
        results.push((scheme.name(), wer));
    }
    assert_eq!(
        results[0].1, 0.0,
        "SpecMark row is grey in the paper (failed insertion)"
    );
    assert!(results[1].1 > 80.0, "RandomWM extracts (mostly)");
    assert_eq!(results[2].1, 100.0, "EmMark extracts fully");
}
