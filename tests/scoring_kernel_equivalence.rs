//! Kernel-vs-scalar-reference scoring equivalence across **all five
//! quantization schemes** (RTN, AWQ, GPTQ, SmoothQuant, LLM.int8()).
//!
//! PR 7 rewrote `scoring::score_layer` / `scoring::layer_pool` as
//! chunked, branch-free kernels (DESIGN.md §11) and kept the per-cell
//! scalar originals as `scoring::reference`. These proptests pin the
//! contract the rewrite must keep forever:
//!
//! * per-cell scores are **bit-identical** (`f64::to_bits`), including
//!   the `∞` exclusion markers for clamped cells, zero weights, and
//!   LLM.int8() outlier rows, under every coefficient regime;
//! * candidate pools select the **same indices in the same order** for
//!   every pool size and every exclusion set (the kernel takes the set
//!   pre-sorted, the reference in arbitrary order — same result);
//! * shortage accounting (`PoolError::{needed, available}`) agrees.

use emmark::core::scoring::{self, reference, ScoreCoefficients};
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use proptest::prelude::*;

const SCHEMES: [&str; 5] = ["rtn", "awq", "gptq", "smoothquant", "llm_int8"];

/// Builds one of the five quantized models plus its activation profile.
/// RTN uses grouped scales here so the matrix also covers
/// `Granularity::Grouped`.
fn quantize(scheme: &str, seed: u64) -> (QuantizedModel, ActivationStats) {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = match scheme {
        "rtn" => QuantizedModel::quantize_with(&model, "rtn-int8-g8", |_, lin| {
            quantize_linear_rtn(
                lin,
                8,
                Granularity::Grouped { group_size: 8 },
                ActQuant::None,
            )
        }),
        "awq" => awq(&model, &stats, &AwqConfig::default()),
        "gptq" => gptq(&mut model.clone(), &calib, &GptqConfig::default()),
        "smoothquant" => smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        "llm_int8" => llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
        other => panic!("unknown scheme {other}"),
    };
    (qm, stats)
}

/// A deterministic pseudo-random exclusion set over `len` cells, in
/// scrambled (unsorted) order — the order `fingerprint_pools` receives
/// base-watermark locations in.
fn exclusion_set(len: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut picks = Vec::with_capacity(count);
    for _ in 0..count {
        // SplitMix64 step; duplicates are fine (both paths tolerate them).
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        picks.push((z ^ (z >> 31)) as usize % len.max(1));
    }
    picks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Per-cell scores are bit-identical between the chunked kernel and
    /// the scalar reference, for every layer and coefficient regime.
    #[test]
    fn kernel_scores_are_bit_identical_to_the_scalar_reference(
        scheme in prop::sample::select(SCHEMES.to_vec()),
        seed in 0u64..1_000_000,
        alpha in prop::sample::select(vec![0.0f64, 0.25, 0.5, 1.0]),
        beta in prop::sample::select(vec![0.0f64, 0.5, 2.0]),
    ) {
        prop_assume!(alpha != 0.0 || beta != 0.0);
        let (qm, stats) = quantize(scheme, seed);
        let coeffs = ScoreCoefficients { alpha, beta };
        for (l, layer) in qm.layers.iter().enumerate() {
            let act = &stats.per_layer[l].mean_abs;
            let kernel = scoring::score_layer(layer, act, &coeffs);
            let scalar = reference::score_layer(layer, act, &coeffs);
            prop_assert_eq!(kernel.len(), scalar.len());
            for (f, (a, b)) in kernel.iter().zip(&scalar).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: layer {} cell {} diverged (kernel {}, scalar {})",
                    scheme, l, f, a, b
                );
            }
        }
    }

    /// Candidate pools — same indices, same order — for every pool size
    /// and exclusion set, with shortage accounting in agreement. The
    /// kernel receives the exclusions sorted, the reference receives
    /// them in scrambled sampled order.
    #[test]
    fn kernel_pools_match_the_scalar_reference(
        scheme in prop::sample::select(SCHEMES.to_vec()),
        seed in 0u64..1_000_000,
        pool_size in prop::sample::select(vec![0usize, 1, 7, 30, 64, 100_000]),
        excl_count in 0usize..40,
    ) {
        let (qm, stats) = quantize(scheme, seed);
        let coeffs = ScoreCoefficients::default();
        for (l, layer) in qm.layers.iter().enumerate() {
            let act = &stats.per_layer[l].mean_abs;
            let unsorted = exclusion_set(layer.len(), excl_count, seed ^ ((l as u64) << 8));
            let mut sorted = unsorted.clone();
            sorted.sort_unstable();
            let kernel = scoring::layer_pool(layer, act, &coeffs, pool_size, &sorted);
            let scalar = reference::layer_pool(layer, act, &coeffs, pool_size, &unsorted);
            prop_assert_eq!(
                kernel, scalar,
                "{}: layer {} pool diverged (pool_size {}, {} exclusions)",
                scheme, l, pool_size, excl_count
            );
        }
    }

    /// The fused streaming pool equals score-everything-then-top-k on
    /// the kernel scores — the kernel keeps `layer_pool` and
    /// `score_layer + candidate_pool` interchangeable.
    #[test]
    fn fused_pool_matches_score_then_pool(
        scheme in prop::sample::select(SCHEMES.to_vec()),
        seed in 0u64..1_000_000,
    ) {
        let (qm, stats) = quantize(scheme, seed);
        let coeffs = ScoreCoefficients::default();
        for (l, layer) in qm.layers.iter().enumerate() {
            let act = &stats.per_layer[l].mean_abs;
            let scores = scoring::score_layer(layer, act, &coeffs);
            let finite = scores.iter().filter(|s| s.is_finite()).count();
            let pool_size = (finite / 2).max(1);
            let direct = scoring::candidate_pool(&scores, pool_size).expect("pool");
            let fused =
                scoring::layer_pool(layer, act, &coeffs, pool_size, &[]).expect("fused pool");
            prop_assert_eq!(direct, fused, "{}: layer {}", scheme, l);
        }
    }
}
