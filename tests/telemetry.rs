//! End-to-end behavior of `emmark_core::telemetry` against the real
//! pipelines:
//!
//! * **JSONL round-trip** — with a sink installed, the streaming stamp
//!   emits span events from both the consumer and the scoped prefetch
//!   worker; every emitted line parses as JSON, span/counter/histogram
//!   lines carry their required keys, and the trailing snapshot lines
//!   agree exactly with the in-process [`Snapshot`] they were rendered
//!   from.
//! * **Spans across scoped threads** — load spans are recorded on the
//!   prefetch worker while stall/compute spans land on the caller, and
//!   nested spans (the per-layer scoring span inside the locate-sweep
//!   span) both record.
//! * **Disabled mode** — the same pipeline with telemetry off records
//!   nothing: every counter zero, every histogram empty.
//!
//! Bucketing edge cases live with the module's unit tests; this file
//! covers the global state, which is why every test serializes on one
//! lock and resets the registry before and after.

use emmark::core::store::{ArtifactLayerStore, ArtifactSink};
use emmark::core::telemetry::{Snapshot, Telemetry};
use emmark::core::watermark::{stream_watermark, OwnerSecrets, WatermarkConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex, MutexGuard};

/// The telemetry registry is process-global; tests that enable, record,
/// and reset must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An in-memory JSONL sink the test can read back after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("sink output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the streaming stamp from a file-format store (real loads, so
/// the prefetch worker participates) and returns the layer count.
fn run_streaming_stamp() -> usize {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = 7;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
        quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
    });
    let n_layers = qm.layers.len();
    let secrets = OwnerSecrets::new(
        qm,
        stats,
        WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        },
        2024,
    );
    let artifact = emmark::core::deploy::encode_model(&secrets.original);
    let store = ArtifactLayerStore::open(Cursor::new(artifact)).expect("open artifact store");
    let mut out = Vec::new();
    stream_watermark(
        &store,
        &secrets.stats,
        &secrets.signature,
        &secrets.config,
        &mut ArtifactSink::new(&mut out),
    )
    .expect("streaming stamp");
    n_layers
}

// ---------------------------------------------------------------------
// A minimal JSON parser — enough to validate the hand-rolled exporter
// without a JSON dependency.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self, key: &str) -> &str {
        match self.get(key) {
            Some(Json::Str(s)) => s,
            other => panic!("expected string at key {key}, got {other:?}"),
        }
    }

    fn num(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(Json::Num(n)) => *n,
            other => panic!("expected number at key {key}, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(line: &'a str) -> Json {
        let mut p = Parser {
            s: line.as_bytes(),
            i: 0,
        };
        let v = p.value();
        p.ws();
        assert_eq!(p.i, p.s.len(), "trailing bytes in JSON line: {line}");
        v
    }

    fn ws(&mut self) {
        while self.s.get(self.i).is_some_and(|b| b.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) {
        self.ws();
        assert_eq!(
            self.s.get(self.i),
            Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) -> Json {
        self.ws();
        match self.s[self.i] {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.s[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        self.ws();
        if self.s.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Json::Obj(fields);
        }
        loop {
            self.ws();
            let key = self.string();
            self.eat(b':');
            fields.push((key, self.value()));
            self.ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected , or }} in object, got {other:?}"),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        self.ws();
        if self.s.get(self.i) == Some(&b']') {
            self.i += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            self.ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected , or ] in array, got {other:?}"),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    let c = self.s[self.i];
                    self.i += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4]).unwrap();
                            self.i += 4;
                            out.push(
                                char::from_u32(u32::from_str_radix(hex, 16).unwrap()).unwrap(),
                            );
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 passes through unescaped.
                    let rest = std::str::from_utf8(&self.s[self.i..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text}")))
    }
}

#[test]
fn jsonl_round_trip_matches_in_process_snapshot() {
    let _guard = lock();
    Telemetry::reset();
    let sink = SharedBuf::default();
    Telemetry::install_jsonl_sink(Box::new(sink.clone()));
    let n_layers = run_streaming_stamp();

    // Stop event streaming, capture once, and append that same capture
    // — file and in-process snapshot cannot disagree by construction,
    // so any mismatch below is an exporter bug.
    let mut taken = Telemetry::take_jsonl_sink().expect("sink was installed");
    let snap = Snapshot::capture();
    snap.write_jsonl(&mut taken).expect("snapshot write");
    taken.flush().expect("snapshot flush");
    drop(taken);
    Telemetry::set_enabled(false);

    let text = sink.contents();
    let lines: Vec<Json> = text.lines().map(Parser::parse).collect();
    assert!(
        lines.len() > n_layers,
        "expected span events plus snapshot, got {} lines",
        lines.len()
    );

    let mut load_threads = Vec::new();
    let mut compute_threads = Vec::new();
    let mut counters_seen = 0usize;
    let mut gauges_seen = 0usize;
    let mut histograms_seen = 0usize;
    for line in &lines {
        match line.str("type") {
            "span" => {
                assert!(line.num("ns") >= 0.0);
                let thread = line.str("thread").to_string();
                match line.str("name") {
                    "emmark_stream_load_ns" => load_threads.push(thread),
                    "emmark_stream_compute_ns" => compute_threads.push(thread),
                    _ => {}
                }
            }
            "counter" => {
                counters_seen += 1;
                let sample = snap
                    .counters
                    .iter()
                    .find(|c| c.name == line.str("name"))
                    .expect("counter line names a registered metric");
                assert_eq!(sample.value as f64, line.num("value"));
            }
            "gauge" => {
                gauges_seen += 1;
                let sample = snap
                    .gauges
                    .iter()
                    .find(|g| g.name == line.str("name"))
                    .expect("gauge line names a registered metric");
                assert_eq!(sample.value as f64, line.num("value"));
            }
            "histogram" => {
                histograms_seen += 1;
                let sample = snap
                    .histograms
                    .iter()
                    .find(|h| h.name == line.str("name"))
                    .expect("histogram line names a registered metric");
                assert_eq!(sample.count as f64, line.num("count"));
                assert_eq!(sample.sum as f64, line.num("sum"));
                let Some(Json::Arr(buckets)) = line.get("buckets") else {
                    panic!("histogram line without a buckets array");
                };
                let total: f64 = buckets.iter().map(|b| b.num("count")).sum();
                assert_eq!(total, sample.count as f64, "buckets must partition count");
            }
            "snapshot" => {}
            other => panic!("unknown line type {other}"),
        }
    }
    assert_eq!(counters_seen, snap.counters.len());
    assert_eq!(gauges_seen, snap.gauges.len());
    assert_eq!(histograms_seen, snap.histograms.len());

    // Cross-thread spans: loads happen on the scoped prefetch worker,
    // compute on the caller — different thread ids in the event stream.
    assert!(!load_threads.is_empty() && !compute_threads.is_empty());
    assert!(
        load_threads.iter().all(|t| !compute_threads.contains(t)),
        "load spans must come from the prefetch worker, not the consumer thread"
    );

    // Nested spans both record: each locate sweep wraps one scoring
    // span per layer inside the sweep-level span.
    let pool = Telemetry::histogram("emmark_scoring_layer_pool_ns").unwrap();
    let locate = Telemetry::histogram("emmark_stamp_locate_sweep_ns").unwrap();
    assert_eq!(pool.count(), n_layers as u64);
    assert_eq!(locate.count(), 1);
    assert_eq!(
        Telemetry::counter("emmark_stream_layers_total")
            .unwrap()
            .get(),
        2 * n_layers as u64,
        "both sweeps stream every layer"
    );
    Telemetry::reset();
}

#[test]
fn disabled_mode_records_nothing() {
    let _guard = lock();
    Telemetry::reset();
    assert!(!Telemetry::enabled());
    run_streaming_stamp();
    let snap = Snapshot::capture();
    for c in &snap.counters {
        assert_eq!(c.value, 0, "{} recorded while disabled", c.name);
    }
    for h in &snap.histograms {
        assert_eq!(h.count, 0, "{} recorded while disabled", h.name);
        assert_eq!(h.sum, 0, "{} recorded while disabled", h.name);
    }
}
