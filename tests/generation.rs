//! The user-visible acceptance test: a watermarked deployed model still
//! generates the same kind of text as the unwatermarked one — the
//! fidelity criterion as an end-user would notice it.

use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::corpus::{Corpus, Grammar, TokenClass};
use emmark::nanolm::generate::{generate, GenerateConfig, Sampling};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};

fn setup() -> (OwnerSecrets, emmark::quant::QuantizedModel, Grammar) {
    let corpus = Corpus::sample(Grammar::synwiki(88), 6_000, 600, 600);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    let mut fp = TransformerModel::new(cfg);
    train(
        &mut fp,
        &corpus,
        &TrainConfig {
            steps: 100,
            batch_size: 8,
            seq_len: 16,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(16)
        .take(8)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp.collect_activation_stats(&calibration);
    let quantized = awq(&fp, &stats, &AwqConfig::default());
    let secrets = OwnerSecrets::new(
        quantized,
        stats,
        WatermarkConfig {
            bits_per_layer: 6,
            pool_ratio: 12,
            ..Default::default()
        },
        0x6E4,
    );
    let deployed = secrets.watermark_for_deployment().expect("insert");
    (secrets, deployed, corpus.grammar)
}

#[test]
fn watermarked_model_greedy_output_barely_changes() {
    let (secrets, deployed, _) = setup();
    let cfg = GenerateConfig {
        max_new_tokens: 48,
        ..Default::default()
    };
    let prompt = [1u32, 2, 3];
    let before = generate(&secrets.original, &prompt, &cfg);
    let after = generate(&deployed, &prompt, &cfg);
    // Greedy decoding is a brutal comparison (one flipped argmax cascades),
    // so require strong prefix agreement rather than equality.
    let agree = before
        .iter()
        .zip(&after)
        .take_while(|(a, b)| a == b)
        .count();
    assert!(
        agree >= 12,
        "greedy outputs diverged immediately: {agree} common prefix tokens\nbefore: {before:?}\nafter:  {after:?}"
    );
}

#[test]
fn watermarked_model_still_writes_grammarlike_sentences() {
    let (_, deployed, grammar) = setup();
    let cfg = GenerateConfig {
        max_new_tokens: 120,
        sampling: Sampling::Temperature(0.9),
        seed: 3,
    };
    let out = generate(&deployed, &[0], &cfg);
    let stops = out
        .iter()
        .filter(|&&t| grammar.class_of(t) == TokenClass::Stop)
        .count();
    assert!(
        stops >= 8,
        "deployed model lost sentence structure ({stops} stops in 120 tokens)"
    );
    assert!(out.iter().all(|&t| (t as usize) < grammar.vocab_size()));
}

#[test]
fn generation_works_through_the_deploy_codec() {
    let (_, deployed, _) = setup();
    let bytes = emmark::core::deploy::encode_model(&deployed);
    let on_device = emmark::core::deploy::decode_model(&bytes).expect("decode");
    let cfg = GenerateConfig {
        max_new_tokens: 16,
        ..Default::default()
    };
    let a = generate(&deployed, &[5, 6], &cfg);
    let b = generate(&on_device, &[5, 6], &cfg);
    assert_eq!(a, b, "deserialized model must generate identically");
}
