//! Property-based coverage of the EMQM v2 indexed codec: encode/decode
//! round-trips over randomized grids and quantizer settings, truncation
//! at *every* section boundary the layer index names, and v1/v2
//! cross-version behavior (shim decode, vault migration).

use emmark::core::deploy::{
    artifact_version, decode_model, encode_model, encode_model_v1, CodecError, SparseArtifact,
    FORMAT_V1, FORMAT_V2,
};
use emmark::core::vault::{decode_secrets, encode_secrets, encode_secrets_v1};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use proptest::prelude::*;

/// A quantized tiny model parameterized by the codec-relevant axes:
/// bit width, scale granularity, activation handling, and init seed.
fn build_model(bits: u8, gran: Granularity, act: ActQuant, seed: u64) -> QuantizedModel {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let model = TransformerModel::new(cfg);
    QuantizedModel::quantize_with(&model, "rtn-prop", |_, lin| {
        quantize_linear_rtn(lin, bits, gran, act)
    })
}

fn granularities() -> Vec<Granularity> {
    vec![
        Granularity::PerTensor,
        Granularity::PerOutChannel,
        Granularity::Grouped { group_size: 4 },
        Granularity::Grouped { group_size: 8 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// v2 round-trips are bit-exact for any quantizer setting, and the
    /// sparse reader agrees with the decoded grid cell for cell.
    #[test]
    fn v2_roundtrip_is_bit_exact(
        bits in prop::sample::select(vec![4u8, 8]),
        gran in prop::sample::select(granularities()),
        act in prop::sample::select(vec![ActQuant::None, ActQuant::Int8PerToken]),
        seed in 0u64..1_000_000,
    ) {
        let model = build_model(bits, gran, act, seed);
        let bytes = encode_model(&model);
        prop_assert_eq!(artifact_version(&bytes).unwrap(), FORMAT_V2);
        let back = decode_model(&bytes).expect("decode");
        prop_assert!(model.same_weights(&back));
        prop_assert_eq!(&model.cfg, &back.cfg);
        prop_assert_eq!(&model.scheme, &back.scheme);
        for (l, layer) in back.layers.iter().enumerate() {
            prop_assert_eq!(layer.granularity(), model.layers[l].granularity());
            prop_assert_eq!(layer.act_quant(), model.layers[l].act_quant());
        }

        let sparse = SparseArtifact::open(&bytes).expect("open");
        prop_assert_eq!(sparse.layer_count(), model.layer_count());
        for (l, layer) in model.layers.iter().enumerate() {
            let view = sparse.layer_grid(l);
            prop_assert_eq!(view.len(), layer.len());
            // Probe a deterministic scatter of cells, not just 0.
            for f in (0..layer.len()).step_by(7) {
                prop_assert_eq!(view.q_at_flat(f), layer.q_at_flat(f));
            }
        }
    }

    /// Truncating a v2 artifact at (and just after) every section
    /// boundary the index names is a clean codec error — never a panic,
    /// never a bogus success.
    #[test]
    fn v2_truncation_at_every_section_boundary_errors_cleanly(
        bits in prop::sample::select(vec![4u8, 8]),
        gran in prop::sample::select(granularities()),
        seed in 0u64..1_000_000,
    ) {
        let model = build_model(bits, gran, ActQuant::None, seed);
        let bytes = encode_model(&model);
        let sparse = SparseArtifact::open(&bytes).expect("open");
        let mut cuts: Vec<usize> = sparse
            .section_boundaries()
            .into_iter()
            .flat_map(|b| [b, b + 1, b.saturating_sub(1)])
            .filter(|&c| c < bytes.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        for cut in cuts {
            let err = decode_model(&bytes[..cut]).expect_err("truncated decode");
            prop_assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::Corrupt { .. }),
                "cut {cut}: {err:?}"
            );
            // The sparse reader rejects every truncation too — its
            // structural walk requires the full body to be present, so
            // a damaged artifact can never be "verified" silently.
            let err = SparseArtifact::open(&bytes[..cut]).expect_err("truncated open");
            prop_assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::Corrupt { .. }),
                "sparse cut {cut}: {err:?}"
            );
        }
    }

    /// v1 encodings of the same model decode to the same weights via
    /// the compatibility shim.
    #[test]
    fn v1_shim_agrees_with_v2(
        bits in prop::sample::select(vec![4u8, 8]),
        seed in 0u64..1_000_000,
    ) {
        let model = build_model(bits, Granularity::PerOutChannel, ActQuant::None, seed);
        let v1 = encode_model_v1(&model);
        let v2 = encode_model(&model);
        prop_assert_eq!(artifact_version(&v1).unwrap(), FORMAT_V1);
        let from_v1 = decode_model(&v1).expect("v1");
        let from_v2 = decode_model(&v2).expect("v2");
        prop_assert!(from_v1.same_weights(&from_v2));
        prop_assert_eq!(&from_v1.cfg, &from_v2.cfg);
        prop_assert_eq!(&from_v1.scheme, &from_v2.scheme);
    }
}

#[test]
fn vault_migration_v1_to_v2_preserves_proof_power() {
    let model = build_model(8, Granularity::PerOutChannel, ActQuant::None, 42);
    let mut fp = TransformerModel::new({
        let mut c = ModelConfig::tiny_test();
        c.init_seed = 42;
        c
    });
    let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
    let stats = fp.collect_activation_stats(&calib);
    let cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(model, stats, cfg, 0x5EC2);
    let deployed = secrets.watermark_for_deployment().expect("insert");

    // v1 vault → decode → re-encode (v2) → decode: proof power intact.
    let migrated = decode_secrets(&encode_secrets_v1(&secrets)).expect("v1 vault");
    let v2_bytes = encode_secrets(&migrated);
    let restored = decode_secrets(&v2_bytes).expect("v2 vault");
    let report = restored.verify(&deployed).expect("verify");
    assert_eq!(report.wer(), 100.0);

    // And the sparse path proves ownership from the migrated secrets.
    let artifact = encode_model(&deployed);
    let sparse = SparseArtifact::open(&artifact).expect("open");
    let sparse_report = restored.verify(&sparse).expect("sparse verify");
    assert_eq!(sparse_report, report);
}
