//! Byte-identity of the streaming `LayerStore` pipeline with the
//! buffered in-memory path, across **all five quantization schemes**
//! (RTN, AWQ, GPTQ, SmoothQuant, LLM.int8()):
//!
//! * `stream_watermark` (score → insert → encode, one layer resident)
//!   vs `insert_watermark` + `encode_model`;
//! * the file-backed [`ArtifactLayerStore`] and the spill-to-disk
//!   [`ShardStore`] as sources, against the in-memory store;
//! * the streaming fleet emitters (`provision_artifact_into`,
//!   `provision_bundle_into`) vs their buffered counterparts;
//! * the `WatermarkScheme::insert_into` trait path (EmMark's streaming
//!   override vs the default materializing implementation).

use emmark::core::deploy::encode_model;
use emmark::core::provision::FleetProvisioner;
use emmark::core::scheme::{EmMarkScheme, WatermarkScheme};
use emmark::core::signature::Signature;
use emmark::core::store::{
    copy_store, ArtifactLayerStore, ArtifactSink, ModelSink, ShardSink, ShardStore,
};
use emmark::core::vault::encode_fleet_bundle;
use emmark::core::watermark::{
    insert_watermark, stream_watermark, stream_watermark_reference, OwnerSecrets, WatermarkConfig,
};
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;

const SCHEMES: [&str; 5] = ["rtn", "awq", "gptq", "smoothquant", "llm_int8"];

/// Builds one of the five quantized models plus its activation profile.
fn quantize(scheme: &str, seed: u64) -> (QuantizedModel, ActivationStats) {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let qm = match scheme {
        "rtn" => QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        }),
        "awq" => awq(&model, &stats, &AwqConfig::default()),
        "gptq" => gptq(&mut model.clone(), &calib, &GptqConfig::default()),
        "smoothquant" => smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        "llm_int8" => llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
        other => panic!("unknown scheme {other}"),
    };
    (qm, stats)
}

fn wm_cfg() -> WatermarkConfig {
    WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        ..Default::default()
    }
}

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "emmark-streamtest-{tag}-{case}-{}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The streaming pipeline is byte-identical to the buffered path
    /// for every scheme, from the in-memory store, the file-backed
    /// artifact store, and the spill-to-disk shard store alike.
    #[test]
    fn streaming_stamp_is_byte_identical_across_all_stores(
        scheme in prop::sample::select(SCHEMES.to_vec()),
        seed in 0u64..1_000_000,
    ) {
        let (original, stats) = quantize(scheme, seed);
        let cfg = wm_cfg();
        let sig = Signature::generate(cfg.signature_len(original.layer_count()), seed ^ 0xB17);

        // Buffered reference: clone, insert in place, encode.
        let buffered = {
            let mut deployed = original.clone();
            let inserted = insert_watermark(&mut deployed, &stats, &sig, &cfg).expect("insert");
            prop_assert!(inserted.bits > 0);
            encode_model(&deployed).to_vec()
        };

        // In-memory store → streaming sink (pipeline-parallel sweeps).
        let mut streamed = Vec::new();
        let inserted =
            stream_watermark(&original, &stats, &sig, &cfg, &mut ArtifactSink::new(&mut streamed))
                .expect("stream");
        prop_assert_eq!(&streamed, &buffered, "in-memory store diverged ({})", scheme);

        // The serial scalar-scoring baseline produces the same bytes and
        // the same locations: neither the PR 7 kernels nor the two-slot
        // load/compute overlap may change selection or output.
        let mut ref_streamed = Vec::new();
        let ref_inserted = stream_watermark_reference(
            &original,
            &stats,
            &sig,
            &cfg,
            &mut ArtifactSink::new(&mut ref_streamed),
        )
        .expect("reference stream");
        prop_assert_eq!(
            &ref_streamed, &buffered,
            "serial scalar baseline diverged ({})", scheme
        );
        prop_assert_eq!(&ref_inserted.locations, &inserted.locations);

        // The reported locations match the buffered path's reproduction.
        let relocated =
            emmark::core::watermark::locate_watermark(&original, &stats, &cfg).expect("locate");
        prop_assert_eq!(&inserted.locations, &relocated);

        // File-backed artifact store (the original encoded to v2 bytes,
        // read back layer-at-a-time) → streaming sink.
        let original_bytes = encode_model(&original).to_vec();
        let artifact_store =
            ArtifactLayerStore::open(Cursor::new(&original_bytes)).expect("open");
        let mut from_artifact = Vec::new();
        stream_watermark(
            &artifact_store,
            &stats,
            &sig,
            &cfg,
            &mut ArtifactSink::new(&mut from_artifact),
        )
        .expect("stream from artifact store");
        prop_assert_eq!(&from_artifact, &buffered, "artifact store diverged ({})", scheme);

        // Spill-to-disk shard store → streaming sink.
        let dir = temp_dir(scheme, seed);
        let mut spill = ShardSink::create(&dir).expect("create shards");
        copy_store(&original, &mut spill).expect("spill");
        let shard_store = ShardStore::open(&dir).expect("open shards");
        let mut from_shards = Vec::new();
        stream_watermark(
            &shard_store,
            &stats,
            &sig,
            &cfg,
            &mut ArtifactSink::new(&mut from_shards),
        )
        .expect("stream from shard store");
        shard_store.remove().expect("cleanup");
        prop_assert_eq!(&from_shards, &buffered, "shard store diverged ({})", scheme);
    }

    /// Streaming into a `ModelSink` materializes exactly the model the
    /// buffered insertion produces (grids, config, scheme label).
    #[test]
    fn streaming_into_a_model_sink_matches_in_place_insertion(
        scheme in prop::sample::select(SCHEMES.to_vec()),
        seed in 0u64..1_000_000,
    ) {
        let (original, stats) = quantize(scheme, seed);
        let cfg = wm_cfg();
        let sig = Signature::generate(cfg.signature_len(original.layer_count()), seed ^ 0x5EED);
        let mut expected = original.clone();
        insert_watermark(&mut expected, &stats, &sig, &cfg).expect("insert");
        let mut sink = ModelSink::new();
        stream_watermark(&original, &stats, &sig, &cfg, &mut sink).expect("stream");
        let streamed = sink.into_model().expect("materialize");
        prop_assert!(streamed.same_weights(&expected), "{}: grids diverged", scheme);
        prop_assert_eq!(&streamed.cfg, &expected.cfg);
        prop_assert_eq!(&streamed.scheme, &expected.scheme);
    }
}

fn base_secrets() -> OwnerSecrets {
    let (qm, stats) = quantize("awq", 42);
    OwnerSecrets::new(qm, stats, wm_cfg(), 0xF1EE7)
}

fn fp_cfg() -> WatermarkConfig {
    WatermarkConfig {
        bits_per_layer: 2,
        pool_ratio: 10,
        selection_seed: 0xDE11CE,
        ..Default::default()
    }
}

#[test]
fn streamed_device_artifacts_match_the_buffered_delta_encoder() {
    let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
    for id in ["edge-00", "edge-01", "edge-02"] {
        let buffered = provisioner.provision_artifact(id);
        let mut streamed = Vec::new();
        let fp = provisioner
            .provision_artifact_into(id, &mut streamed)
            .expect("stream");
        assert_eq!(fp, buffered.fingerprint, "{id}: registry entry diverged");
        assert_eq!(
            streamed, buffered.artifact,
            "{id}: streamed splice must equal the buffered patch"
        );
    }
}

#[test]
fn streamed_bundle_matches_the_buffered_bundle_encoder() {
    let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
    let ids: Vec<String> = (0..5).map(|i| format!("edge-{i:02}")).collect();
    let provisioned = provisioner.provision_batch(&ids, None);
    let buffered = encode_fleet_bundle(provisioner.fingerprint_config(), &provisioned).to_vec();
    let mut streamed = Vec::new();
    let fingerprints = provisioner
        .provision_bundle_into(&ids, &mut streamed)
        .expect("stream bundle");
    assert_eq!(streamed, buffered, "bundle bytes diverged");
    let expected: Vec<_> = provisioned.iter().map(|p| p.fingerprint.clone()).collect();
    assert_eq!(fingerprints, expected, "registry entries diverged");
}

#[test]
fn scheme_trait_streaming_override_matches_the_default_path() {
    let (original, stats) = quantize("awq", 7);
    let scheme = EmMarkScheme {
        config: wm_cfg(),
        signature_seed: 11,
    };
    // EmMark's override: genuinely streaming.
    let mut streamed = Vec::new();
    scheme
        .insert_into(&original, &stats, &mut ArtifactSink::new(&mut streamed))
        .expect("streaming insert_into");
    // The default implementation's semantics: materialize, insert,
    // stream out.
    let mut expected_model = original.clone();
    scheme.insert(&mut expected_model, &stats).expect("insert");
    let expected = encode_model(&expected_model).to_vec();
    assert_eq!(
        streamed, expected,
        "EmMark's streaming insert_into must equal insert + encode"
    );
}
