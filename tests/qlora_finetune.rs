//! The paper's fine-tuning argument, end to end: QLoRA-style adaptation
//! of a *watermarked* quantized model learns a new distribution while
//! the integer weights — and therefore the watermark — remain untouched.

use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::model::stream_nll;
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::qlora::QloraModel;

#[test]
fn lora_finetune_cannot_remove_the_watermark() {
    // Owner: train, quantize, watermark, deploy.
    let corpus = Corpus::sample(Grammar::synwiki(55), 6_000, 600, 600);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    let mut fp = TransformerModel::new(cfg);
    train(
        &mut fp,
        &corpus,
        &TrainConfig {
            steps: 80,
            batch_size: 6,
            seq_len: 16,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(16)
        .take(8)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp.collect_activation_stats(&calibration);
    let quantized = awq(&fp, &stats, &AwqConfig::default());
    let secrets = OwnerSecrets::new(
        quantized,
        stats,
        WatermarkConfig {
            bits_per_layer: 6,
            pool_ratio: 12,
            ..Default::default()
        },
        0x10BA,
    );
    let deployed = secrets.watermark_for_deployment().expect("insert");

    // Adversary: QLoRA fine-tune the deployed model onto SynAlpaca.
    let alpaca = Grammar::synalpaca(55).generate(5_000);
    let mut qlora = QloraModel::new(deployed.clone(), 8, 9);
    let before = stream_nll(&qlora, &alpaca[..400], 16);
    qlora.finetune(&alpaca, 200, 16, 5e-3, 10);
    let after = stream_nll(&qlora, &alpaca[..400], 16);
    assert!(after < before, "QLoRA failed to adapt: {before} -> {after}");

    // The adaptation genuinely learned something…
    assert!(
        qlora.adapter.delta_weight().abs_max() > 0.0,
        "adapter must have non-zero weights after training"
    );
    // …yet the quantized weights are bit-identical, so extraction is
    // still perfect — fine-tuning is not a removal attack (§3, §5.3).
    assert!(qlora.base.same_weights(&deployed));
    let report = secrets.verify(&qlora.base).expect("extract");
    assert_eq!(report.wer(), 100.0);
}
