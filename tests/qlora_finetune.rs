//! The paper's fine-tuning argument, end to end: QLoRA-style adaptation
//! of a *watermarked* quantized model learns a new distribution while
//! the integer weights — and therefore the watermark — remain untouched.

use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::model::stream_nll;
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::qlora::QloraModel;

#[test]
fn lora_finetune_cannot_remove_the_watermark() {
    // Owner: train, quantize, watermark, deploy.
    let corpus = Corpus::sample(Grammar::synwiki(55), 6_000, 600, 600);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    let mut fp = TransformerModel::new(cfg);
    train(
        &mut fp,
        &corpus,
        &TrainConfig {
            steps: 80,
            batch_size: 6,
            seq_len: 16,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(16)
        .take(8)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp.collect_activation_stats(&calibration);
    let quantized = awq(&fp, &stats, &AwqConfig::default());
    let secrets = OwnerSecrets::new(
        quantized,
        stats,
        WatermarkConfig {
            bits_per_layer: 6,
            pool_ratio: 12,
            ..Default::default()
        },
        0x10BA,
    );
    let deployed = secrets.watermark_for_deployment().expect("insert");

    // Adversary: QLoRA fine-tune the deployed model onto SynAlpaca.
    let alpaca = Grammar::synalpaca(55).generate(5_000);
    let mut qlora = QloraModel::new(deployed.clone(), 8, 9);
    let before = stream_nll(&qlora, &alpaca[..400], 16);
    qlora.finetune(&alpaca, 200, 16, 5e-3, 10);
    let after = stream_nll(&qlora, &alpaca[..400], 16);
    assert!(after < before, "QLoRA failed to adapt: {before} -> {after}");

    // The adaptation genuinely learned something…
    assert!(
        qlora.adapter.delta_weight().abs_max() > 0.0,
        "adapter must have non-zero weights after training"
    );
    // …yet the quantized weights are bit-identical, so extraction is
    // still perfect — fine-tuning is not a removal attack (§3, §5.3).
    assert!(qlora.base.same_weights(&deployed));
    let report = secrets.verify(&qlora.base).expect("extract");
    assert_eq!(report.wer(), 100.0);
}

mod merge_properties {
    use super::*;
    use emmark::attacks::finetune::{qlora_finetune_attack, FinetuneConfig};
    use emmark::core::watermark::OwnerSecrets;
    use emmark::quant::QuantizedModel;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// The watermarked AWQ deployment of the module fixture, built once:
    /// the proptest below only varies the *adversary's* knobs.
    fn fixture() -> &'static (OwnerSecrets, QuantizedModel, Vec<u32>) {
        static FIXTURE: OnceLock<(OwnerSecrets, QuantizedModel, Vec<u32>)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let corpus = Corpus::sample(Grammar::synwiki(55), 6_000, 600, 600);
            let mut cfg = ModelConfig::tiny_test();
            cfg.vocab_size = corpus.grammar.vocab_size();
            let mut fp = TransformerModel::new(cfg);
            train(
                &mut fp,
                &corpus,
                &TrainConfig {
                    steps: 80,
                    batch_size: 6,
                    seq_len: 16,
                    ..TrainConfig::default()
                },
            );
            let calibration: Vec<Vec<u32>> = corpus
                .valid
                .chunks(16)
                .take(8)
                .map(|c| c.to_vec())
                .collect();
            let stats = fp.collect_activation_stats(&calibration);
            let quantized = awq(&fp, &stats, &AwqConfig::default());
            let secrets = OwnerSecrets::new(
                quantized,
                stats,
                WatermarkConfig {
                    bits_per_layer: 6,
                    pool_ratio: 12,
                    ..Default::default()
                },
                0x10BA,
            );
            let deployed = secrets.watermark_for_deployment().expect("insert");
            let alpaca = Grammar::synalpaca(55).generate(5_000);
            (secrets, deployed, alpaca)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Across the benign fine-tuning regime — any adapter rank,
        /// step budget, and learning rate an honest downstream tuner
        /// would pick — merging the adapter back into the integer grids
        /// (the removal adversary's move) never pushes WER below the
        /// structural floor, the Eq. 8 proof stands, and the whole
        /// attack is bit-stable: the same seed reproduces the same
        /// artifact and the same extraction verdict.
        #[test]
        fn merged_adapters_keep_the_watermark_across_the_benign_regime(
            rank in prop::sample::select(vec![2usize, 4, 8, 16]),
            steps in prop::sample::select(vec![20u64, 60, 150]),
            lr in prop::sample::select(vec![1e-3f32, 5e-3, 1e-2]),
            seed in 0u64..1_000,
        ) {
            let (secrets, deployed, alpaca) = fixture();
            let cfg = FinetuneConfig { rank, steps, lr, seed, ..Default::default() };
            let merged = qlora_finetune_attack(deployed, alpaca, &cfg);

            // Bit-stable: repeating the identical adversary run yields
            // the identical artifact, hence the identical verdict.
            let rerun = qlora_finetune_attack(deployed, alpaca, &cfg);
            prop_assert!(merged.same_weights(&rerun));
            let report = secrets.verify(&merged).expect("extract");
            let rerun_report = secrets.verify(&rerun).expect("extract");
            prop_assert_eq!(&report, &rerun_report);

            // Only the head layer is re-rounded by the merge, so at
            // most one layer's bits are at risk…
            for l in 0..deployed.layer_count() - 1 {
                prop_assert_eq!(
                    deployed.layers[l].q_values(),
                    merged.layers[l].q_values()
                );
            }
            // …which bounds WER at (n-1)/n of the signature, and keeps
            // the binomial-tail proof overwhelming.
            prop_assert!(report.wer() >= 90.0, "wer {}", report.wer());
            prop_assert!(
                report.proves_ownership(-6.0),
                "p = 10^{}",
                report.log10_p_chance()
            );
        }
    }
}
