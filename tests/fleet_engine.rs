//! Fleet verification engine guarantees, pinned end to end:
//!
//! 1. parallel batch verification of N device artifacts agrees
//!    bit-for-bit with the serial single-device `OwnerSecrets::verify` /
//!    `Fleet::device_report` path, and
//! 2. the cached-locations path returns `ExtractionReport`s identical to
//!    the uncached path, including under tampering and for artifacts
//!    that carry no fingerprint at all.

use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::core::deploy::{decode_model, encode_model};
use emmark::core::fingerprint::Fleet;
use emmark::core::fleet::{decode_registry, encode_registry, FleetVerifier};
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};

const N_DEVICES: usize = 16;

fn provisioned_fleet() -> (Fleet, Vec<String>, Vec<Vec<u8>>) {
    let mut model = TransformerModel::new(ModelConfig::tiny_test());
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let base_cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    };
    let base = OwnerSecrets::new(quantized, stats, base_cfg, 0xBA5E);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        selection_seed: 0xD1CE,
        ..Default::default()
    };
    let mut fleet = Fleet::new(base, fp_cfg);
    let ids: Vec<String> = (0..N_DEVICES).map(|i| format!("edge-{i:03}")).collect();
    let artifacts = ids
        .iter()
        .map(|id| encode_model(&fleet.provision(id).expect("provision")).to_vec())
        .collect();
    (fleet, ids, artifacts)
}

#[test]
fn parallel_batch_agrees_bit_for_bit_with_serial_verify() {
    let (fleet, ids, artifacts) = provisioned_fleet();
    let verifier = FleetVerifier::new(&fleet).expect("cache");
    let verdicts = verifier.verify_batch(&artifacts, -6.0, Some(8));
    assert_eq!(verdicts.len(), N_DEVICES);
    for (i, verdict) in verdicts.iter().enumerate() {
        let verdict = verdict.as_ref().expect("verdict");
        let suspect = decode_model(&artifacts[i]).expect("decode");
        // Ownership: identical report to the serial owner-side check.
        let serial = fleet.base.verify(&suspect).expect("serial verify");
        assert_eq!(
            verdict.ownership, serial,
            "artifact {i}: ownership diverged"
        );
        assert_eq!(verdict.ownership.wer(), 100.0);
        // Attribution: identical device and report to the serial path.
        let (device, report) = verdict.attribution.as_ref().expect("attributed");
        assert_eq!(device.device_id, ids[i]);
        let serial_fp = fleet.device_report(device, &suspect).expect("serial fp");
        assert_eq!(
            *report, serial_fp,
            "artifact {i}: fingerprint report diverged"
        );
    }
}

#[test]
fn job_count_never_changes_a_verdict() {
    let (fleet, _, artifacts) = provisioned_fleet();
    let verifier = FleetVerifier::new(&fleet).expect("cache");
    let reference = verifier.verify_batch(&artifacts, -6.0, Some(1));
    for jobs in [2, 3, 7, 32] {
        assert_eq!(
            verifier.verify_batch(&artifacts, -6.0, Some(jobs)),
            reference,
            "jobs={jobs} changed the verdicts"
        );
    }
}

#[test]
fn cached_reports_match_uncached_under_tampering() {
    let (fleet, _, artifacts) = provisioned_fleet();
    let verifier = FleetVerifier::new(&fleet).expect("cache");
    let mut leaked = decode_model(&artifacts[3]).expect("decode");
    overwrite_attack(
        &mut leaked,
        &OverwriteConfig {
            per_layer: 6,
            seed: 0x7A3,
        },
    );
    let cached_own = verifier.ownership_report(&leaked).expect("cached");
    let uncached_own = fleet.base.verify(&leaked).expect("uncached");
    assert_eq!(cached_own, uncached_own);
    for device in fleet.devices() {
        let cached = verifier.device_report(device, &leaked).expect("cached");
        let uncached = fleet.device_report(device, &leaked).expect("uncached");
        assert_eq!(
            cached, uncached,
            "device {} diverged under tampering",
            device.device_id
        );
    }
}

#[test]
fn unfingerprinted_artifact_proves_ownership_but_traces_to_nobody() {
    let (fleet, _, _) = provisioned_fleet();
    let verifier = FleetVerifier::new(&fleet).expect("cache");
    let base_only = encode_model(&fleet.base.watermark_for_deployment().expect("deploy"));
    let verdict = verifier.verify_artifact(&base_only, -6.0).expect("verdict");
    assert_eq!(verdict.ownership.wer(), 100.0);
    assert!(verdict.proves_ownership(-6.0));
    assert!(
        verdict.attribution.is_none(),
        "false attribution: {:?}",
        verdict.attribution
    );
}

#[test]
fn registry_roundtrip_rebuilds_an_equivalent_verifier() {
    let (fleet, _, artifacts) = provisioned_fleet();
    let direct = FleetVerifier::new(&fleet).expect("cache");
    let registry = encode_registry(&fleet.fingerprint_config, fleet.devices());
    let (fp_cfg, devices) = decode_registry(&registry).expect("registry");
    let rebuilt = FleetVerifier::from_parts(fleet.base.clone(), fp_cfg, devices).expect("rebuild");
    assert_eq!(
        direct.verify_batch(&artifacts, -6.0, None),
        rebuilt.verify_batch(&artifacts, -6.0, None),
        "registry roundtrip changed verdicts"
    );
}
