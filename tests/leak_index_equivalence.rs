//! Indexed-vs-linear leak identification equivalence: for every
//! quantization scheme in `emmark-quant`, tracing a suspect through the
//! fingerprint-cell inverted index must return the *bit-identical*
//! verdict — same device, same matched-bit counts, same chance-match
//! probability — as the linear scan over every registered device, on
//! honest suspects, near-misses (base watermark only, pristine), and
//! adversarial cross-device splices. The index only narrows candidates;
//! Eq. 8 decides.

use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark::core::fleet::FleetVerifier;
use emmark::core::provision::FleetProvisioner;
use emmark::core::registry::{
    decode_manifest, encode_manifest, load_sharded_registry, provision_sharded,
};
use emmark::core::watermark::{GridSource, OwnerSecrets, WatermarkConfig};
use emmark::nanolm::model::ActivationStats;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};
use emmark::quant::gptq::{gptq, GptqConfig};
use emmark::quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};

/// One quantized model per scheme shipped in `emmark-quant`, all from
/// the same trained-free tiny transformer and calibration set.
fn all_schemes() -> (Vec<QuantizedModel>, ActivationStats) {
    let mut model = TransformerModel::new(ModelConfig::tiny_test());
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let models = vec![
        QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        }),
        awq(&model, &stats, &AwqConfig::default()),
        gptq(&mut model.clone(), &calib, &GptqConfig::default()),
        smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
    ];
    (models, stats)
}

/// Thresholds spanning the interesting regimes: vacuous (every device
/// is a candidate), ordinary, strict, and unreachable (even a perfect
/// match cannot clear it).
const THRESHOLDS: &[f64] = &[0.0, -3.0, -6.0, -40.0, -1000.0];

fn assert_indexed_matches_linear<S: GridSource>(
    verifier: &FleetVerifier,
    index: &emmark::core::registry::LeakIndex,
    suspect: &S,
    label: &str,
) {
    for &t in THRESHOLDS {
        let linear = verifier
            .identify_leak(suspect, t)
            .expect("linear identify")
            .map(|(d, r)| (d.device_id.clone(), r));
        let indexed = verifier
            .identify_leak_indexed(index, suspect, t)
            .expect("indexed identify")
            .map(|(d, r)| (d.device_id.clone(), r));
        // Same device *and* the same report — matched-bit counts
        // included, so even the diagnostic output is interchangeable.
        assert_eq!(indexed, linear, "{label} at threshold 10^{t}");
    }
}

#[test]
fn indexed_and_linear_identification_agree_on_every_scheme() {
    let (models, stats) = all_schemes();
    assert_eq!(models.len(), 5, "all five quant schemes covered");
    for qm in models {
        let scheme = qm.scheme.clone();
        let base_cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let base = OwnerSecrets::new(qm, stats.clone(), base_cfg, 0xF1EE7);
        let pristine = base.original.clone();
        let fp_cfg = WatermarkConfig {
            bits_per_layer: 3,
            pool_ratio: 10,
            selection_seed: 0xDE11CE,
            ..Default::default()
        };
        let provisioner = FleetProvisioner::new(base, fp_cfg).expect("provisioner");
        let base_only = provisioner.base_deployed().clone();
        let ids: Vec<String> = (0..6).map(|i| format!("{scheme}-dev-{i}")).collect();
        let deployments: Vec<QuantizedModel> = ids
            .iter()
            .map(|id| provisioner.provision_model(id).1)
            .collect();
        let fingerprints = ids
            .iter()
            .map(|id| provisioner.provision_model(id).0)
            .collect();
        let verifier = provisioner.verifier(fingerprints);
        let index = verifier.leak_index();

        // Honest suspects: every device's own deployment traces back to
        // it through both paths.
        for (id, leaked) in ids.iter().zip(&deployments) {
            assert_indexed_matches_linear(&verifier, &index, leaked, &format!("{scheme}/{id}"));
            let traced = verifier
                .identify_leak_indexed(&index, leaked, -6.0)
                .expect("identify")
                .expect("traced");
            assert_eq!(&traced.0.device_id, id, "{scheme}: wrong device");
            assert_eq!(
                traced.1.matched_bits, traced.1.total_bits,
                "{scheme}: clean leak matches every bit"
            );
        }

        // Near misses: the base-only deployment (ownership watermark,
        // no fingerprint) and the pristine original must not be traced
        // to any device — by either path.
        for (label, suspect) in [("base-only", &base_only), ("pristine", &pristine)] {
            assert_indexed_matches_linear(&verifier, &index, suspect, &format!("{scheme}/{label}"));
            assert!(
                verifier
                    .identify_leak_indexed(&index, suspect, -6.0)
                    .expect("identify")
                    .is_none(),
                "{scheme}/{label}: must not be traced"
            );
        }

        // Adversarial cross-device splices: colluding devices stitch
        // half of A's layers onto half of B's. Whatever the verdict,
        // both paths must return it bit for bit.
        let n = deployments[0].layers.len();
        for (a, b) in [(0usize, 1usize), (2, 3), (4, 5)] {
            let mut splice = deployments[a].clone();
            splice.layers[n / 2..].clone_from_slice(&deployments[b].layers[n / 2..]);
            assert_indexed_matches_linear(
                &verifier,
                &index,
                &splice,
                &format!("{scheme}/splice-{a}-{b}"),
            );
        }

        // Attacked device deployment: partial fingerprint damage.
        let mut attacked = deployments[2].clone();
        overwrite_attack(
            &mut attacked,
            &OverwriteConfig {
                per_layer: 20,
                seed: 7,
            },
        );
        assert_indexed_matches_linear(&verifier, &index, &attacked, &format!("{scheme}/attacked"));
    }
}

#[test]
fn persisted_manifest_index_matches_the_freshly_built_one() {
    let (models, stats) = all_schemes();
    // AWQ INT4 — the paper's main scheme — through the on-disk flow:
    // provision sharded, encode the manifest, decode it back, and trace
    // through the *persisted* index.
    let base_cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    };
    let base = OwnerSecrets::new(models[1].clone(), stats, base_cfg, 0xF1EE7);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        selection_seed: 0xDE11CE,
        ..Default::default()
    };
    let provisioner = FleetProvisioner::new(base.clone(), fp_cfg).expect("provisioner");
    let ids: Vec<String> = (0..9).map(|i| format!("edge-{i:02}")).collect();
    let fleet = provision_sharded(&provisioner, &ids, 3, None).expect("provision");
    let manifest_bytes = encode_manifest(&fleet.manifest);
    let decoded = decode_manifest(&manifest_bytes).expect("decode");

    let registry = load_sharded_registry(&manifest_bytes, |name| {
        fleet
            .shards
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.to_vec())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, name.to_string()))
    })
    .expect("load");
    let verifier = provisioner.verifier(registry.devices().to_vec());
    assert_eq!(
        &verifier.leak_index(),
        registry.index(),
        "persisted index must equal the freshly built one"
    );
    assert_eq!(registry.index(), &decoded.index);

    let leaked = provisioner.provision_model(&ids[5]).1;
    let indexed = registry
        .clone()
        .into_verifier(base)
        .expect("indexed verifier");
    let traced = indexed
        .identify_leak(&leaked, -6.0)
        .expect("identify")
        .map(|(d, r)| (d.device_id.clone(), r));
    let linear = verifier
        .identify_leak(&leaked, -6.0)
        .expect("linear")
        .map(|(d, r)| (d.device_id.clone(), r));
    assert_eq!(traced, linear);
    assert_eq!(traced.expect("traced").0, ids[5]);
}

#[test]
fn index_over_a_different_population_is_rejected() {
    let (models, stats) = all_schemes();
    let base_cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 10,
        ..Default::default()
    };
    let base = OwnerSecrets::new(models[0].clone(), stats, base_cfg, 0x11);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 2,
        pool_ratio: 10,
        selection_seed: 0xDE11CE,
        ..Default::default()
    };
    let provisioner = FleetProvisioner::new(base, fp_cfg).expect("provisioner");
    let few: Vec<_> = (0..2)
        .map(|i| provisioner.provision_model(&format!("a{i}")).0)
        .collect();
    let many: Vec<_> = (0..4)
        .map(|i| provisioner.provision_model(&format!("a{i}")).0)
        .collect();
    let small = provisioner.verifier(few);
    let big = provisioner.verifier(many);
    let suspect = provisioner.base_deployed().clone();
    let err = big
        .identify_leak_indexed(&small.leak_index(), &suspect, -6.0)
        .expect_err("population mismatch");
    assert!(err.to_string().contains("devices"), "{err}");
}
