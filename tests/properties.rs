//! Property-based tests (proptest) over the invariants DESIGN.md §5
//! commits to.

use emmark::core::signature::Signature;
use emmark::core::watermark::{
    extract_watermark, insert_watermark, locate_watermark, WatermarkConfig,
};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::rtn::{quantize_block, quantize_linear_rtn};
use emmark::quant::{ActQuant, Granularity, QuantizedModel};
use emmark::tensor::dct::{dct2, dct3};
use emmark::tensor::stats::{binomial_tail, ln_binomial_tail};
use proptest::prelude::*;

/// A quantized tiny model parameterized by bit width and init seed.
fn quantized_model(bits: u8, seed: u64) -> QuantizedModel {
    let mut cfg = ModelConfig::tiny_test();
    cfg.init_seed = seed;
    let model = TransformerModel::new(cfg);
    QuantizedModel::quantize_with(&model, "rtn-prop", |_, lin| {
        quantize_linear_rtn(lin, bits, Granularity::PerOutChannel, ActQuant::None)
    })
}

/// Activation stats with seeded pseudo-random channel magnitudes (the
/// watermark only consumes mean-abs values, so synthetic profiles are a
/// valid domain).
fn synthetic_stats(model: &QuantizedModel, seed: u64) -> emmark::nanolm::ActivationStats {
    let mut rng = emmark::tensor::Xoshiro256::seed_from_u64(seed);
    emmark::nanolm::ActivationStats {
        per_layer: model
            .layers
            .iter()
            .map(|l| {
                let mean: Vec<f32> = (0..l.in_features())
                    .map(|_| rng.uniform_range(0.01, 4.0))
                    .collect();
                let max: Vec<f32> = mean.iter().map(|&m| m * 3.0).collect();
                emmark::nanolm::model::LayerActivation {
                    mean_abs: mean,
                    max_abs: max,
                }
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Eq. 1 invariant: dequantization error is at most half a step.
    #[test]
    fn quantize_roundtrip_error_bounded(
        values in prop::collection::vec(-10.0f32..10.0, 1..200),
        bits in prop::sample::select(vec![4u8, 8]),
    ) {
        let (q, delta) = quantize_block(&values, bits);
        for (&v, &qv) in values.iter().zip(q.iter()) {
            let err = (v - qv as f32 * delta).abs();
            prop_assert!(err <= delta / 2.0 + 1e-5, "err {err} > {}", delta / 2.0);
        }
    }

    /// DCT-III inverts DCT-II for arbitrary signals.
    #[test]
    fn dct_roundtrip_identity(signal in prop::collection::vec(-100.0f64..100.0, 1..128)) {
        let back = dct3(&dct2(&signal));
        for (a, b) in signal.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// Insert→extract returns exactly 100% WER for any seed/config in
    /// the valid domain, on both bit widths.
    #[test]
    fn insert_extract_roundtrip_is_perfect(
        bits in prop::sample::select(vec![4u8, 8]),
        model_seed in 0u64..50,
        selection_seed in 0u64..1000,
        signature_seed in 0u64..1000,
        bits_per_layer in 1usize..6,
        alpha in 0.0f64..2.0,
        beta in 0.0f64..2.0,
    ) {
        prop_assume!(alpha > 0.0 || beta > 0.0);
        let original = quantized_model(bits, model_seed);
        let stats = synthetic_stats(&original, model_seed ^ 0x57A7);
        let cfg = WatermarkConfig {
            alpha, beta, bits_per_layer, pool_ratio: 8, selection_seed,
        };
        let sig = Signature::generate(cfg.signature_len(original.layer_count()), signature_seed);
        let mut deployed = original.clone();
        insert_watermark(&mut deployed, &stats, &sig, &cfg).expect("insert");
        let report = extract_watermark(&deployed, &original, &stats, &sig, &cfg).expect("extract");
        prop_assert_eq!(report.matched_bits, report.total_bits);
    }

    /// Location derivation is a pure function of the secret material.
    #[test]
    fn locations_reproducible_and_distinct(
        model_seed in 0u64..30,
        selection_seed in 0u64..500,
    ) {
        let original = quantized_model(4, model_seed);
        let stats = synthetic_stats(&original, 1);
        let cfg = WatermarkConfig {
            bits_per_layer: 4, pool_ratio: 8, selection_seed, ..Default::default()
        };
        let a = locate_watermark(&original, &stats, &cfg).expect("locate");
        let b = locate_watermark(&original, &stats, &cfg).expect("locate");
        prop_assert_eq!(&a, &b);
        for layer_locs in &a {
            let mut sorted = layer_locs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), layer_locs.len(), "duplicate locations");
        }
    }

    /// No selected cell is ever clamped, zero, or an outlier row — the
    /// invariant that makes Eq. 5 clip-free.
    #[test]
    fn selected_cells_are_always_bumpable(
        model_seed in 0u64..30,
        selection_seed in 0u64..500,
        bits in prop::sample::select(vec![4u8, 8]),
    ) {
        let original = quantized_model(bits, model_seed);
        let stats = synthetic_stats(&original, 2);
        let cfg = WatermarkConfig {
            bits_per_layer: 4, pool_ratio: 8, selection_seed, ..Default::default()
        };
        let locations = locate_watermark(&original, &stats, &cfg).expect("locate");
        for (l, locs) in locations.iter().enumerate() {
            for &f in locs {
                prop_assert!(!original.layers[l].is_clamped_flat(f));
                prop_assert!(original.layers[l].q_at_flat(f) != 0);
            }
        }
    }

    /// Eq. 8 sanity: tails are probabilities, monotone in k, and match
    /// the direct f64 evaluation where that does not underflow.
    #[test]
    fn binomial_tail_properties(n in 1u64..64, k in 0u64..64) {
        prop_assume!(k <= n);
        let p = binomial_tail(n, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        if k > 0 {
            prop_assert!(binomial_tail(n, k - 1) >= p - 1e-12);
        }
        prop_assert!(ln_binomial_tail(n, k).is_finite() || k > n);
    }

    /// Deploy codec round-trips arbitrary watermarked models bit-exactly.
    #[test]
    fn codec_roundtrip_any_model(
        bits in prop::sample::select(vec![4u8, 8]),
        model_seed in 0u64..20,
        signature_seed in 0u64..100,
    ) {
        let original = quantized_model(bits, model_seed);
        let stats = synthetic_stats(&original, 3);
        let cfg = WatermarkConfig { bits_per_layer: 3, pool_ratio: 8, ..Default::default() };
        let sig = Signature::generate(cfg.signature_len(original.layer_count()), signature_seed);
        let mut deployed = original.clone();
        insert_watermark(&mut deployed, &stats, &sig, &cfg).expect("insert");
        let bytes = emmark::core::deploy::encode_model(&deployed);
        let back = emmark::core::deploy::decode_model(&bytes).expect("decode");
        prop_assert!(back.same_weights(&deployed));
        // And the watermark still extracts from the decoded copy.
        let report = extract_watermark(&back, &original, &stats, &sig, &cfg).expect("extract");
        prop_assert_eq!(report.matched_bits, report.total_bits);
    }

    /// Rademacher signatures are always ±1 and deterministic per seed.
    #[test]
    fn signatures_are_valid_rademacher(len in 1usize..512, seed in 0u64..1000) {
        let sig = Signature::generate(len, seed);
        prop_assert_eq!(sig.len(), len);
        prop_assert!(sig.bits().iter().all(|&b| b == 1 || b == -1));
        prop_assert_eq!(sig, Signature::generate(len, seed));
    }
}
