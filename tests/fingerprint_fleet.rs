//! Fleet fingerprinting end to end: provision several devices through
//! the deploy codec (as real distribution would), leak one, and
//! attribute the leak — with the base ownership watermark intact on
//! every copy.

use emmark::core::deploy::{decode_model, encode_model};
use emmark::core::fingerprint::Fleet;
use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark::nanolm::corpus::{Corpus, Grammar};
use emmark::nanolm::train::{train, TrainConfig};
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::awq::{awq, AwqConfig};

fn fleet() -> Fleet {
    let corpus = Corpus::sample(Grammar::synwiki(66), 5_000, 500, 500);
    let mut cfg = ModelConfig::tiny_test();
    cfg.vocab_size = corpus.grammar.vocab_size();
    let mut fp = TransformerModel::new(cfg);
    train(
        &mut fp,
        &corpus,
        &TrainConfig {
            steps: 60,
            batch_size: 6,
            seq_len: 16,
            ..TrainConfig::default()
        },
    );
    let calibration: Vec<Vec<u32>> = corpus
        .valid
        .chunks(16)
        .take(8)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp.collect_activation_stats(&calibration);
    let quantized = awq(&fp, &stats, &AwqConfig::default());
    let base = OwnerSecrets::new(
        quantized,
        stats,
        WatermarkConfig {
            bits_per_layer: 5,
            pool_ratio: 12,
            ..Default::default()
        },
        0xF1EE7,
    );
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 12,
        selection_seed: 0xD1CE,
        ..Default::default()
    };
    Fleet::new(base, fp_cfg)
}

#[test]
fn leak_attribution_works_through_the_wire_format() {
    let mut fleet = fleet();
    let ids = ["edge-001", "edge-002", "edge-003", "edge-004"];
    // Provision and "ship" every device: serialize + deserialize.
    let mut shipped = Vec::new();
    for id in ids {
        let deployment = fleet.provision(id).expect("provision");
        let bytes = encode_model(&deployment);
        shipped.push(decode_model(&bytes).expect("decode"));
    }
    // Devices differ pairwise.
    for i in 0..shipped.len() {
        for j in i + 1..shipped.len() {
            assert!(
                !shipped[i].same_weights(&shipped[j]),
                "{i} vs {j} identical"
            );
        }
    }
    // A copy of the third device leaks; attribution finds it and only it.
    let leaked = &shipped[2];
    let (device, report) = fleet
        .identify_leak(leaked, -6.0)
        .expect("identify")
        .expect("attributed");
    assert_eq!(device.device_id, ids[2]);
    assert!(report.wer() >= 90.0);
    // And the base ownership proof holds on the leaked copy too.
    let ownership = fleet.base.verify(leaked).expect("verify");
    assert!(ownership.wer() >= 90.0);
    assert!(ownership.proves_ownership(-9.0));
}

#[test]
fn attribution_survives_a_light_attack_on_the_leak() {
    use emmark::attacks::overwrite::{overwrite_attack, OverwriteConfig};
    let mut fleet = fleet();
    let _ = fleet.provision("edge-a").expect("provision");
    let mut leaked = fleet.provision("edge-b").expect("provision");
    overwrite_attack(
        &mut leaked,
        &OverwriteConfig {
            per_layer: 8,
            seed: 13,
        },
    );
    let (device, _) = fleet
        .identify_leak(&leaked, -4.0)
        .expect("identify")
        .expect("attributed");
    assert_eq!(device.device_id, "edge-b");
}
