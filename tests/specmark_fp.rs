//! The SpecMark sanity experiment (§5.2 "Comparison with SpecMark"):
//! the same SpecMark implementation must *succeed* on full-precision
//! weights and *fail* on quantized ones — establishing that the 0% WER
//! in Table 1 is a property of the integer grid, not of the
//! implementation.

use emmark::core::baselines::{
    specmark_extract_fp, specmark_extract_quantized, specmark_insert_fp, specmark_insert_quantized,
    SpecMarkConfig,
};
use emmark::core::signature::Signature;
use emmark::nanolm::model::LogitsModel;
use emmark::nanolm::{ModelConfig, TransformerModel};
use emmark::quant::rtn::quantize_linear_rtn;
use emmark::quant::{ActQuant, Granularity, QuantizedModel};

fn fp_model() -> TransformerModel {
    TransformerModel::new(ModelConfig::tiny_test())
}

fn cfg() -> SpecMarkConfig {
    SpecMarkConfig {
        bits_per_layer: 8,
        ..Default::default()
    }
}

#[test]
fn specmark_extracts_fully_from_full_precision_weights() {
    let original = fp_model();
    let mut marked = original.clone();
    let sig = Signature::generate(cfg().bits_per_layer * original.cfg.quant_layer_count(), 1);
    specmark_insert_fp(&mut marked, &sig, &cfg());
    let report = specmark_extract_fp(&marked, &original, &sig, &cfg());
    assert_eq!(report.wer(), 100.0);
}

#[test]
fn specmark_perturbation_preserves_fp_model_behavior() {
    let original = fp_model();
    let mut marked = original.clone();
    let sig = Signature::generate(cfg().bits_per_layer * original.cfg.quant_layer_count(), 2);
    specmark_insert_fp(&mut marked, &sig, &cfg());
    let tokens = [1u32, 4, 9, 16, 25];
    let a = original.logits(&tokens);
    let b = marked.logits(&tokens);
    let rel = a.sub(&b).frobenius_norm() / a.frobenius_norm().max(1e-12);
    // ε = 0.01 spread over 256-sample blocks is a ~1e-3 per-weight
    // nudge; on a 16-wide micro model that is a few percent of logit
    // norm — small, and far below the quantization error itself.
    assert!(rel < 0.08, "SpecMark damaged the fp model: rel err {rel}");
}

#[test]
fn the_same_scheme_dies_on_the_integer_grid() {
    for bits in [8u8, 4] {
        let fp = fp_model();
        let original = QuantizedModel::quantize_with(&fp, "rtn", |_, lin| {
            quantize_linear_rtn(lin, bits, Granularity::PerOutChannel, ActQuant::None)
        });
        let mut marked = original.clone();
        let sig = Signature::generate(cfg().bits_per_layer * original.layer_count(), 3);
        specmark_insert_quantized(&mut marked, &sig, &cfg());
        let report = specmark_extract_quantized(&marked, &original, &sig, &cfg());
        assert_eq!(
            report.wer(),
            0.0,
            "INT{bits}: SpecMark must fail on quantized weights"
        );
        // …and the reason is that the weights never changed.
        assert!(marked.same_weights(&original));
    }
}

#[test]
fn a_huge_epsilon_would_survive_but_that_is_no_longer_specmark() {
    // Show the mechanism precisely: ε comparable to a quantization step
    // does survive rounding — at the cost of directly bumping integers,
    // which is exactly the regime EmMark handles with scoring instead.
    let fp = fp_model();
    let original = QuantizedModel::quantize_with(&fp, "rtn", |_, lin| {
        quantize_linear_rtn(lin, 4, Granularity::PerOutChannel, ActQuant::None)
    });
    let big = SpecMarkConfig {
        epsilon: 24.0,
        ..cfg()
    };
    let sig = Signature::generate(big.bits_per_layer * original.layer_count(), 4);
    let mut marked = original.clone();
    specmark_insert_quantized(&mut marked, &sig, &big);
    assert!(
        !marked.same_weights(&original),
        "a step-scale epsilon must actually alter the integer grid"
    );
    let report = specmark_extract_quantized(&marked, &original, &sig, &big);
    assert!(
        report.wer() > 20.0,
        "some step-scale bits should survive rounding"
    );
}
